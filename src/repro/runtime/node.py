"""One overlay member as an async actor behind a mailbox.

A :class:`NodeProcess` owns an address on the transport, a FIFO
mailbox, and (once joined) an overlay node id.  Its run loop drains
the mailbox one frame at a time, so all overlay-state access from a
node is serialized -- the actor model's usual guarantee.  Responses
(ACK / ERROR) bypass the mailbox and resolve the pending request
future directly: a node awaiting a reply never deadlocks behind its
own queue.

Routing is hop-by-hop over the wire: each actor makes exactly one
forwarding decision (:meth:`EcanOverlay.next_hop`, the fault-free
branch of the simulator's ``route``) and sends the ROUTE frame to the
chosen peer; the final owner replies straight to the origin.  The
wire therefore carries the same hop sequence the synchronous
simulator would produce for the same tessellation, which is what the
cluster's sim-parity check relies on.
"""

from __future__ import annotations

import asyncio
import itertools

from repro.runtime.transport import TransportError
from repro.runtime.wire import Frame, MsgType


class RemoteError(Exception):
    """A peer answered with an ERROR frame."""


class RequestTimeout(Exception):
    """No reply arrived within the request deadline."""


class NodeProcess:
    """An async overlay-node actor speaking the wire protocol."""

    def __init__(self, cluster, addr, host: int = None):
        self.cluster = cluster
        #: transport address; a temporary string while joining, the
        #: overlay node id (int) once a member
        self.addr = addr
        self.host = host
        self.mailbox: asyncio.Queue = asyncio.Queue()
        #: request_id -> Future awaiting an ACK/ERROR
        self.pending: dict = {}
        self._req_ids = itertools.count(1)
        self._task = None
        #: frames this actor processed, by kind name (diagnostics)
        self.handled: dict = {}
        #: request attempts this actor resent under its retry policy
        self.retries = 0

    @property
    def node_id(self):
        """Overlay node id (None until the join completes)."""
        return self.addr if isinstance(self.addr, int) else None

    @property
    def transport(self):
        return self.cluster.transport

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        await self.transport.bind(self.addr, self.on_frame, host=self.host)
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        await self.transport.unbind(self.addr)
        # fail pending requests rather than cancelling them: a
        # CancelledError is a BaseException and would tear straight
        # through an awaiting load generator's error handling, turning
        # a crashed peer into a crashed workload
        for future in self.pending.values():
            if not future.done():
                future.set_exception(
                    TransportError(f"node {self.addr!r} stopped")
                )
        self.pending.clear()

    async def rebind(self, addr, host: int = None) -> None:
        """Adopt a new address (temporary joiner -> member node id)."""
        await self.transport.unbind(self.addr)
        self.addr = addr
        if host is not None:
            self.host = host
        await self.transport.bind(self.addr, self.on_frame, host=self.host)

    # -- frame plumbing ----------------------------------------------------

    async def on_frame(self, frame: Frame) -> None:
        """Transport delivery callback."""
        if frame.kind in (MsgType.ACK, MsgType.ERROR):
            future = self.pending.pop(frame.request_id, None)
            if future is not None and not future.done():
                if frame.kind is MsgType.ERROR:
                    future.set_exception(
                        RemoteError(frame.payload.get("error", "remote error"))
                    )
                else:
                    future.set_result(frame.payload)
            return
        await self.mailbox.put(frame)

    async def _run(self) -> None:
        while True:
            frame = await self.mailbox.get()
            name = frame.kind.name
            self.handled[name] = self.handled.get(name, 0) + 1
            try:
                await self._dispatch(frame)
            except Exception as exc:  # answer rather than kill the actor
                src = frame.payload.get("src")
                if src is not None:
                    await self.transport.send(
                        self.addr,
                        src,
                        frame.reply({"error": repr(exc)}, kind=MsgType.ERROR),
                    )

    async def request(
        self, dst, kind: MsgType, payload: dict, timeout=None, retry=None
    ) -> dict:
        """Send one frame and await the correlated ACK payload.

        ``retry`` selects the resend policy: ``None`` uses the
        cluster-wide :attr:`ClusterConfig.retry` (no resend when that
        is unset too), ``False`` forces a single attempt, and a
        :class:`~repro.core.reliability.RetryPolicy` overrides both.
        Lost or unanswered attempts back off by the policy's schedule
        -- interpreted as wall milliseconds -- and the shared policy
        instance accumulates the retry/backoff accounting, giving
        cluster-wide counters for free.  A :class:`RemoteError` is
        never retried: the peer answered, it just said no.
        """
        if retry is None:
            retry = self.cluster.config.retry
        attempts = 1 if retry in (None, False) else retry.max_attempts
        failure = None
        for attempt in range(attempts):
            try:
                return await self._request_once(dst, kind, payload, timeout)
            except (TransportError, RequestTimeout) as exc:
                failure = exc
                if attempt + 1 < attempts:
                    self.retries += 1
                    delay_ms = retry.sleep(attempt)
                    if delay_ms > 0.0:
                        await asyncio.sleep(delay_ms / 1000.0)
        raise failure

    async def _request_once(self, dst, kind: MsgType, payload: dict, timeout) -> dict:
        if timeout is None:
            timeout = self.cluster.config.request_timeout
        request_id = next(self._req_ids)
        future = asyncio.get_running_loop().create_future()
        # a crash may fail this future after its awaiter timed out and
        # moved on; retrieve defensively so no "exception was never
        # retrieved" noise outlives the actor
        future.add_done_callback(
            lambda f: None if f.cancelled() else f.exception()
        )
        self.pending[request_id] = future
        frame = Frame(kind, request_id, {**payload, "src": self.addr})
        sent = await self.transport.send(self.addr, dst, frame)
        if not sent:
            self.pending.pop(request_id, None)
            raise TransportError(f"frame to {dst!r} was not sent")
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self.pending.pop(request_id, None)
            raise RequestTimeout(
                f"{kind.name} to {dst!r} unanswered after {timeout}s"
            ) from None

    # -- RPC entry points (called by the Cluster) --------------------------

    async def rpc_route(self, point, op: str = "route", timeout=None) -> dict:
        """Route ``point`` over the wire from this node; returns the ACK.

        The first forwarding decision runs through the same machinery
        as every later hop: the ROUTE frame is sent to *this* node's
        own endpoint and dispatched from the mailbox.
        """
        return await self.request(
            self.addr,
            MsgType.ROUTE,
            {"point": [float(x) for x in point], "path": [self.addr], "op": op},
            timeout=timeout,
        )

    # -- dispatch ----------------------------------------------------------

    async def _dispatch(self, frame: Frame) -> None:
        if frame.kind is MsgType.ROUTE:
            await self._handle_route(frame)
        elif frame.kind is MsgType.JOIN:
            await self._handle_join(frame)
        elif frame.kind is MsgType.PUBLISH:
            await self._handle_publish(frame)
        elif frame.kind is MsgType.LOOKUP:
            await self._handle_lookup(frame)
        elif frame.kind is MsgType.HEARTBEAT:
            await self._handle_heartbeat(frame)
        else:  # pragma: no cover - on_frame filters ACK/ERROR already
            raise ValueError(f"unroutable frame kind {frame.kind!r}")

    async def _reply(self, frame: Frame, payload: dict, kind=None) -> None:
        dst = frame.payload.get("src")
        if dst is not None:
            await self.transport.send(self.addr, dst, frame.reply(payload, kind=kind))

    async def _handle_heartbeat(self, frame: Frame) -> None:
        """Answer a liveness probe; with ``relay`` set, probe on behalf.

        A ``relay`` payload is SWIM's indirect ping-req: this node is a
        witness, heartbeats the relay target itself, and reports in the
        reply whether the target answered -- so a prober whose direct
        path is down can still refute a suspicion through k witnesses.
        Plain heartbeats keep the bare ``{"seq", "from"}`` reply shape.
        """
        payload = frame.payload
        seq = payload.get("seq")
        relay = payload.get("relay")
        if relay is None:
            await self._reply(frame, {"seq": seq, "from": self.addr})
            return
        timeout = payload.get("timeout", self.cluster.config.probe_timeout)
        try:
            await self.request(
                relay, MsgType.HEARTBEAT, {"seq": seq}, timeout=timeout, retry=False
            )
            answered = True
        except Exception:
            answered = False
        await self._reply(
            frame, {"seq": seq, "from": self.addr, "relay": relay, "ok": answered}
        )

    async def _handle_join(self, frame: Frame) -> None:
        """Admit a newcomer (bootstrap-node duty)."""
        node_id, host = self.cluster.admit(capacity=frame.payload.get("capacity", 1.0))
        await self._reply(frame, {"node_id": node_id, "host": host})

    async def _handle_publish(self, frame: Frame) -> None:
        regions = self.cluster.overlay.store.publish(self.node_id)
        await self._reply(frame, {"regions": regions, "node_id": self.node_id})

    async def _handle_lookup(self, frame: Frame) -> None:
        """Serve a soft-state map read from this node's shard."""
        await self._reply(frame, await self._serve_map_read(frame.payload))

    async def _handle_route(self, frame: Frame) -> None:
        payload = frame.payload
        point = tuple(payload["point"])
        path = list(payload["path"])
        overlay = self.cluster.overlay
        next_id, kind = overlay.ecan.next_hop(
            self.node_id, point, visited=frozenset(path)
        )
        if kind == "delivered":
            result = {
                "owner": self.node_id,
                "path": path,
                "hops": len(path) - 1,
            }
            if payload.get("op") == "lookup" and "level" in payload:
                # map read at the serving node, fused into the delivery
                lookup = await self._serve_map_read(payload)
                result.update(lookup)
            await self._reply(frame, result)
            return
        if next_id is None or len(path) > self.cluster.config.max_hops:
            await self._reply(
                frame,
                {"error": f"route stuck after {len(path) - 1} hops", "path": path},
                kind=MsgType.ERROR,
            )
            return
        network = self.cluster.network
        network.stats.count(f"runtime_{kind}_hop")
        network.telemetry.bump("runtime_hop")
        forwarded = Frame(
            MsgType.ROUTE, frame.request_id, {**payload, "path": path + [next_id]}
        )
        sent = await self.transport.send(self.addr, next_id, forwarded)
        if not sent:
            await self._reply(
                frame,
                {"error": f"hop {self.addr}->{next_id} dropped", "path": path},
                kind=MsgType.ERROR,
            )

    async def _serve_map_read(self, payload: dict) -> dict:
        from repro.softstate.maps import Region

        store = self.cluster.overlay.store
        region = Region(
            int(payload["level"]), tuple(int(c) for c in payload["cell"])
        )
        result = store.lookup(int(payload["querier"]), region, charge=False)
        return {
            "served_by": result.served_by,
            "widened": result.widened,
            "records": [record.node_id for record in result.records],
        }
