"""Multi-process sharded cluster: one event loop per core.

A single asyncio loop caps the live runtime at whatever one core can
dispatch (~20k ops/s on the reference box).  :class:`ShardedCluster`
breaks that ceiling structurally: the membership is partitioned
across N worker *processes*, each running its own event loop over a
full :class:`~repro.runtime.cluster.RoutingView` replica, so the
per-hop forwarding work parallelizes across cores.

**Sharding is topology-aware**, exactly in the spirit of the paper:
members are grouped by the transit domain of their physical host
(:func:`shard_assignment`), so the topology-aware tessellation --
which places topologically-close nodes in nearby zones -- keeps most
greedy hops *intra-process*, on the in-memory fast path.  Only hops
that genuinely cross transit domains pay for a socket.

**State is replicated, not shared.**  Every worker rebuilds the
identical overlay from (config, seed) -- the same determinism the
sim-parity gate has always relied on -- and wraps its private replica
in a ``RoutingView``.  There is no shared mutable overlay state
between processes; membership changes (crash/leave injection) are
broadcast over the control channel and applied as the same
deterministic mutation on every replica.

**Three planes:**

* *data plane, intra-shard*: frames between co-sharded members go
  through the worker's inner transport (in-process loopback by
  default, per-node TCP when configured) -- unchanged semantics;
* *data plane, cross-shard*: each worker listens on one TCP *peering
  socket*; a frame for a remote member rides the existing wire v3
  encoding prefixed with a 4-byte destination node id
  (:class:`PeeringTransport`).  Batching mirrors the TCP transport:
  frames coalesce per destination shard and one flusher writes each
  batch;
* *control plane*: one :mod:`multiprocessing` pipe per worker carries
  boot orchestration, RPCs (lookup/route/map reads for the parity
  check), load-generation commands, crash/leave injection and
  counter/telemetry aggregation.  A worker process dying surfaces as
  a typed :class:`ShardCrashed` on the next command -- never a hang.

The parity bar does not move: ``verify_against_sim`` on a sharded
cluster replays the identical seeded workload against an
independently built synchronous simulator and requires bit-identical
owners and endpoints, regardless of how many processes served it.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import struct
import time

from repro.core.builder import TopologyAwareOverlay
from repro.core.config import make_network
from repro.runtime import wire
from repro.runtime.cluster import (
    Cluster,
    ClusterConfig,
    verify_cluster_against_sim,
)
from repro.runtime.loadgen import LoadReport, run_load
from repro.runtime.transport import Transport, TransportError, make_transport
from repro.runtime.wire import Frame, encode_frame
from repro.softstate.maps import Region


class ShardError(Exception):
    """A shard worker rejected or failed a control-channel command."""


class ShardCrashed(ShardError):
    """A shard worker process died (control pipe broken or EOF)."""


class NotSupportedError(ShardError, NotImplementedError):
    """A capability the sharded runtime does not provide yet.

    Raised instead of a bare ``NotImplementedError`` so callers (the
    management plane's ``/health``, harness-agnostic scripts) can
    branch on the *kind* of refusal: the feature exists on the
    single-process :class:`~repro.runtime.cluster.Cluster` and is
    merely not ported across shard workers yet.  Subclasses
    ``NotImplementedError`` so pre-existing ``except``/``raises``
    sites keep working.
    """


#: start method for worker processes: fork (POSIX) boots without
#: re-importing the scientific stack and inherits an installed uvloop
#: policy; platforms without it fall back to spawn
_START_METHOD = (
    "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
)


def shard_assignment(network, hosts: dict, nshards: int) -> dict:
    """Partition members across shards, locality-first.

    ``hosts`` maps node id -> physical host.  Members are ordered by
    (transit domain, host, node id) and cut into ``nshards``
    contiguous, size-balanced slices, so co-domain (and a fortiori
    co-hosted) members land in the same worker wherever the balance
    allows -- the topology-aware tessellation then keeps most routing
    hops intra-process.  Deterministic: a pure function of the
    topology and the membership.
    """
    domain = network.topology.transit_domain
    ordered = sorted(
        hosts, key=lambda n: (int(domain[hosts[n]]), int(hosts[n]), int(n))
    )
    base, extra = divmod(len(ordered), nshards)
    assignment = {}
    cursor = 0
    for shard in range(nshards):
        size = base + (1 if shard < extra else 0)
        for node_id in ordered[cursor:cursor + size]:
            assignment[int(node_id)] = shard
        cursor += size
    return assignment


# -- cross-shard peering -----------------------------------------------------

#: peering envelope: destination node id prefixed to each wire frame
_ENVELOPE = struct.Struct("!I")


class _EnvelopeDecoder:
    """Incremental (dst, frame) reassembly on a peering byte stream."""

    def __init__(self):
        self._buffer = bytearray()

    def feed(self, chunk: bytes) -> list:
        buffer = self._buffer
        buffer.extend(chunk)
        out = []
        offset = 0
        head = _ENVELOPE.size + wire.HEADER.size
        try:
            while len(buffer) - offset >= head:
                (dst,) = _ENVELOPE.unpack_from(buffer, offset)
                kind, packed, request_id, length = wire._parse_header(
                    buffer, offset + _ENVELOPE.size
                )
                start = offset + head
                if len(buffer) - start < length:
                    break
                payload = wire._parse_payload(
                    kind, packed, bytes(buffer[start:start + length])
                )
                out.append((dst, Frame(kind, request_id, payload)))
                offset = start + length
        finally:
            if offset:
                del buffer[:offset]
        return out


class PeeringTransport(Transport):
    """Hybrid shard transport: local fast path + one TCP link per peer shard.

    Frames between co-sharded members delegate to the worker's inner
    transport (loopback or per-node TCP) with unchanged semantics.  A
    frame for a member of another shard is encoded once (wire v3,
    untouched), prefixed with its 4-byte destination node id, and
    coalesced into that shard's outbox; one flusher task per
    destination shard writes whole batches with drain backpressure,
    mirroring :class:`~repro.runtime.transport.TcpTransport`.  The
    receiving worker's single peering server demultiplexes by the
    envelope id onto its local handlers.
    """

    kind = "peering"

    def __init__(
        self,
        shard_id: int,
        shard_of: dict,
        inner: Transport,
        interface: str = "127.0.0.1",
        outbox_cap: int = 8192,
    ):
        super().__init__(encoding=inner.encoding)
        self.shard_id = shard_id
        #: node id -> owning shard (string joiner addrs are never
        #: sharded: anything unknown is treated as local)
        self.shard_of = shard_of
        self.inner = inner
        self.interface = interface
        self.outbox_cap = outbox_cap
        self.backpressure_drops = 0
        #: shard id -> (host, port) peering endpoints, set after boot
        self.peers: dict = {}
        self.port = None
        self._server = None
        self._local: dict = {}
        self._writers: dict = {}
        self._writer_locks: dict = {}
        self._readers: set = set()
        self._outbox: dict = {}
        #: peered frames that arrived for an unbound (dead?) member
        self.misrouted = 0
        self.peer_sent = 0
        self.peer_delivered = 0

    async def start(self) -> None:
        await self.inner.start()
        self._server = await asyncio.start_server(
            self._serve, self.interface, 0
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def bind(self, addr, handler, host: int = None) -> None:
        self._local[addr] = handler
        await self.inner.bind(addr, handler, host=host)

    async def unbind(self, addr) -> None:
        self._local.pop(addr, None)
        await self.inner.unbind(addr)

    async def send(self, src, dst, frame: Frame) -> bool:
        if self._closed:
            raise TransportError("transport is closed")
        shard = self.shard_of.get(dst, self.shard_id)
        if shard == self.shard_id:
            return await self.inner.send(src, dst, frame)
        self.sent += 1
        self.peer_sent += 1
        data = _ENVELOPE.pack(dst) + encode_frame(frame, packed=self._packed)
        batch = self._outbox.get(shard)
        if batch is None:
            self._outbox[shard] = [data]
            self._spawn(self._flush(shard))
        elif self.outbox_cap is not None and len(batch) >= self.outbox_cap:
            self.backpressure_drops += 1
            self.dropped += 1
            return False
        else:
            batch.append(data)
        return True

    async def _writer_for(self, shard) -> asyncio.StreamWriter:
        lock = self._writer_locks.setdefault(shard, asyncio.Lock())
        async with lock:
            writer = self._writers.get(shard)
            if writer is not None:
                if not writer.is_closing():
                    return writer
                self._writers.pop(shard, None)
                writer.close()
            endpoint = self.peers.get(shard)
            if endpoint is None:
                raise TransportError(f"no peering endpoint for shard {shard}")
            try:
                _, writer = await asyncio.open_connection(*endpoint)
            except OSError as exc:
                raise TransportError(
                    f"peering connect to shard {shard} failed: {exc}"
                ) from exc
            self._writers[shard] = writer
            return writer

    async def _flush(self, shard) -> None:
        while True:
            batch = self._outbox.get(shard)
            if not batch:
                self._outbox.pop(shard, None)
                return
            self._outbox[shard] = []
            try:
                writer = await self._writer_for(shard)
                writer.write(b"".join(batch))
                await writer.drain()
            except (TransportError, OSError):
                self.dropped += len(batch)

    async def _serve(self, reader, writer) -> None:
        decoder = _EnvelopeDecoder()
        self._readers.add(writer)
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                for dst, frame in decoder.feed(chunk):
                    handler = self._local.get(dst)
                    if handler is None:
                        # a crashed/unbound member: the frame drops and
                        # the origin's request times out, exactly like
                        # a frame to a dead host on the flat transports
                        self.misrouted += 1
                        continue
                    self.peer_delivered += 1
                    self.delivered += 1
                    await handler(frame)
        except (asyncio.CancelledError, ConnectionResetError):
            pass
        except wire.ProtocolError:
            self.dropped += 1
        finally:
            self._readers.discard(writer)
            writer.close()

    def counters(self) -> dict:
        """Peering + inner traffic accounting for aggregation."""
        return {
            "peer_sent": self.peer_sent,
            "peer_delivered": self.peer_delivered,
            "peer_misrouted": self.misrouted,
            "local_sent": self.inner.sent,
            "local_delivered": self.inner.delivered,
            "dropped": self.dropped + self.inner.dropped,
            "backpressure_drops": self.backpressure_drops,
        }

    async def close(self) -> None:
        await super().close()
        self._outbox.clear()
        for writer in list(self._writers.values()) + list(self._readers):
            writer.close()
        self._writers.clear()
        self._readers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.inner.close()


# -- the worker process ------------------------------------------------------


class _WorkerCluster(Cluster):
    """One shard: a full deterministic replica, actors for owned nodes only."""

    def __init__(self, config: ClusterConfig, shard_id: int, assignment: dict):
        self.shard_id = shard_id
        self.assignment = assignment
        super().__init__(config)

    def _make_transport(self):
        config = self.config
        inner_kwargs = dict(encoding=config.wire_encoding)
        if config.transport == "tcp":
            inner_kwargs["outbox_cap"] = config.outbox_cap
        inner = make_transport(config.transport, **inner_kwargs)
        return PeeringTransport(
            self.shard_id,
            self.assignment,
            inner,
            outbox_cap=config.outbox_cap,
        )

    async def start(self) -> "Cluster":
        if self._started:
            return self
        self._started = True
        await self.transport.start()
        with self.network.telemetry.phase("runtime_boot"):
            build = (
                self.overlay.build_bulk
                if self.config.bulk_boot
                else self.overlay.build
            )
            members = build(self.config.nodes)
            owned = [
                n for n in members if self.assignment[int(n)] == self.shard_id
            ]
            await self.start_actors(owned)
        return self


async def _worker_crash(cluster: _WorkerCluster, node_id: int) -> list:
    """Apply a crash on this replica (owner also stops the actors).

    Host-level semantics match :meth:`Cluster.crash`: every co-hosted
    member dies with the machine.  Every worker runs the identical
    bookkeeping (crash ledger, replica copy-death accounting), so the
    replicas stay bit-identical; only the owning shard has live actors
    to stop.
    """
    host = cluster.routing.host_of(node_id)
    nodes = cluster.routing.ecan.can.nodes
    victims = sorted(n for n, rec in nodes.items() if int(rec.host) == host)
    cluster._ensure_faults().crash_host(host)
    for victim in victims:
        actor = cluster.actors.pop(victim, None)
        if actor is not None:
            await actor.stop()
        cluster.overlay.store.drop_hosted_by(victim)
        cluster.crashed[victim] = host
    return victims


async def _worker_leave(cluster: _WorkerCluster, node_id: int) -> None:
    """Graceful departure, applied identically on every replica."""
    actor = cluster.actors.pop(node_id, None)
    if actor is not None:
        await actor.stop()
    cluster.overlay.remove_node(node_id, graceful=True)


async def _worker_load(cluster: _WorkerCluster, spec: dict) -> dict:
    """Drive this shard's slice of a distributed load run."""
    report = await run_load(
        cluster,
        rate=spec["rate"],
        count=spec["count"],
        seed=spec["seed"],
        op=spec["op"],
        concurrency=spec["concurrency"],
        sources=list(cluster.actors),
    )
    return {
        "ops": report.ops,
        "errors": report.errors,
        "latencies_ms": report.latencies_ms,
        "error_latencies_ms": report.error_latencies_ms,
        "mode": report.mode,
        "concurrency": report.concurrency,
        "wall_duration_s": report.wall_duration_s,
        "retries": report.retries,
        "backoff_ms": report.backoff_ms,
        "busy_errors": report.busy_errors,
        "breaker_fastfails": report.breaker_fastfails,
        "shed": report.shed,
        "loop": report.loop,
    }


def _worker_counters(cluster: _WorkerCluster) -> dict:
    telemetry = cluster.network.telemetry
    return {
        "events": dict(telemetry.event_counts),
        "metrics": dict(telemetry.counters),
        "transport": cluster.transport.counters(),
        "overload": cluster.overload_counters(),
    }


async def _worker_handle(cluster: _WorkerCluster, msg: tuple):
    op = msg[0]
    if op == "peers":
        cluster.transport.peers.update(msg[1])
        return None
    if op == "lookup":
        return await cluster.lookup(msg[1], msg[2])
    if op == "route":
        return await cluster.route(msg[1], msg[2])
    if op == "lookup_map":
        return await cluster.lookup_map(msg[1], Region(msg[2], tuple(msg[3])))
    if op == "publish":
        return await cluster.publish(msg[1])
    if op == "ping":
        return await cluster.ping(msg[1], msg[2], seq=msg[3])
    if op == "load":
        return await _worker_load(cluster, msg[1])
    if op == "counters":
        return _worker_counters(cluster)
    if op == "crash":
        return await _worker_crash(cluster, msg[1])
    if op == "leave":
        return await _worker_leave(cluster, msg[1])
    raise ShardError(f"unknown control op {op!r}")


async def _worker(config, shard_id, assignment, conn) -> None:
    cluster = _WorkerCluster(config, shard_id, assignment)
    began = time.perf_counter()
    await cluster.start()
    conn.send(
        (
            "ready",
            shard_id,
            cluster.transport.port,
            time.perf_counter() - began,
            len(cluster.actors),
        )
    )
    loop = asyncio.get_running_loop()
    try:
        while True:
            try:
                # the blocking pipe read rides an executor thread so the
                # loop keeps serving peering traffic between commands
                msg = await loop.run_in_executor(None, conn.recv)
            except EOFError:
                break  # parent is gone; shut down quietly
            if msg[0] == "stop":
                break
            try:
                result = await _worker_handle(cluster, msg)
            except Exception as exc:
                conn.send(("error", repr(exc)))
            else:
                conn.send(("ok", result))
    finally:
        await cluster.stop()


def _worker_main(config, shard_id, assignment, conn) -> None:
    """Worker process entry point: one event loop, then a clean exit."""
    try:
        asyncio.run(_worker(config, shard_id, assignment, conn))
        try:
            conn.send(("bye", shard_id))
        except (OSError, ValueError, BrokenPipeError):
            pass
    except BaseException as exc:  # surface boot/teardown failures
        try:
            conn.send(("fatal", repr(exc)))
        except (OSError, ValueError, BrokenPipeError):
            pass
    finally:
        conn.close()


# -- the parent harness ------------------------------------------------------


class _WorkerHandle:
    """Parent-side bookkeeping for one shard worker."""

    __slots__ = ("shard_id", "process", "conn", "lock", "boot_s", "owned")

    def __init__(self, shard_id, process, conn):
        self.shard_id = shard_id
        self.process = process
        self.conn = conn
        self.lock = asyncio.Lock()
        self.boot_s = 0.0
        self.owned = 0

    @property
    def dead(self) -> bool:
        return self.process.exitcode is not None


class ShardedCluster:
    """N overlay members sharded across worker processes.

    Same high-level surface as :class:`Cluster` (``start``/``stop``,
    ``lookup``/``route``/``lookup_map``/``publish``/``ping``,
    ``run_load``, ``verify_against_sim``, ``crash``/``leave``,
    counter aggregation), built on the control channel.  The parent
    keeps its own replica for zone geometry and shard routing but
    serves no data-plane traffic.
    """

    def __init__(self, config: ClusterConfig):
        if config.latency_scale:
            raise ValueError(
                "latency shaping is not supported across shards yet "
                "(use shards=1 for shaped runs)"
            )
        if config.fault_plan is not None:
            raise ValueError(
                "transport fault plans are not supported across shards yet"
            )
        self.config = config
        self.network = make_network(config.network)
        self.overlay = TopologyAwareOverlay(self.network, config.overlay)
        from repro.runtime.cluster import RoutingView

        self.routing = RoutingView(self.overlay)
        self.workers: list = []
        #: node id -> owning shard, set at boot
        self.assignment: dict = {}
        self.crashed: dict = {}
        #: always ``None``: the wire SWIM loop does not span shards yet
        #: (:meth:`enable_recovery` raises :class:`NotSupportedError`);
        #: kept so harness-agnostic readers -- the management plane's
        #: ``/health`` -- need no isinstance checks
        self.recovery = None
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def node_ids(self) -> list:
        return list(self.assignment)

    def __len__(self) -> int:
        return len(self.assignment)

    @property
    def shards(self) -> int:
        return self.config.shards

    async def start(self) -> "ShardedCluster":
        if self._started:
            return self
        self._started = True
        config = self.config
        with self.network.telemetry.phase("runtime_boot"):
            build = (
                self.overlay.build_bulk if config.bulk_boot else self.overlay.build
            )
            members = build(config.nodes)
            hosts = {int(n): self.routing.host_of(n) for n in members}
            self.assignment = shard_assignment(
                self.network, hosts, config.shards
            )
            context = multiprocessing.get_context(_START_METHOD)
            for shard_id in range(config.shards):
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    args=(config, shard_id, self.assignment, child_conn),
                    name=f"repro-shard-{shard_id}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self.workers.append(
                    _WorkerHandle(shard_id, process, parent_conn)
                )
            ports = {}
            for worker in self.workers:
                msg = await self._recv(worker)
                if msg[0] != "ready":
                    raise ShardError(
                        f"shard {worker.shard_id} failed to boot: {msg!r}"
                    )
                _, shard_id, port, boot_s, owned = msg
                ports[shard_id] = ("127.0.0.1", int(port))
                worker.boot_s = float(boot_s)
                worker.owned = int(owned)
            await asyncio.gather(
                *(self._call(w, ("peers", ports)) for w in self.workers)
            )
        return self

    async def stop(self) -> None:
        for worker in self.workers:
            if worker.dead:
                continue
            try:
                worker.conn.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                continue
        loop = asyncio.get_running_loop()
        for worker in self.workers:
            await loop.run_in_executor(None, worker.process.join, 10.0)
            if worker.process.exitcode is None:
                worker.process.terminate()
                await loop.run_in_executor(None, worker.process.join, 5.0)
            worker.conn.close()
        self.workers.clear()
        self._started = False

    async def __aenter__(self) -> "ShardedCluster":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- control channel ---------------------------------------------------

    def _owner(self, node_id: int) -> _WorkerHandle:
        shard = self.assignment.get(node_id)
        if shard is None:
            raise KeyError(f"node {node_id} is not a cluster member")
        return self.workers[shard]

    async def _recv(self, worker: _WorkerHandle):
        loop = asyncio.get_running_loop()
        try:
            msg = await loop.run_in_executor(None, worker.conn.recv)
        except (EOFError, OSError) as exc:
            raise ShardCrashed(
                f"shard {worker.shard_id} worker died "
                f"(exitcode {worker.process.exitcode})"
            ) from exc
        if msg[0] == "fatal":
            raise ShardError(f"shard {worker.shard_id} failed: {msg[1]}")
        return msg

    async def _call(self, worker: _WorkerHandle, msg: tuple):
        """One command round-trip; a dead worker raises, never hangs."""
        async with worker.lock:
            if worker.dead:
                raise ShardCrashed(
                    f"shard {worker.shard_id} worker died "
                    f"(exitcode {worker.process.exitcode})"
                )
            try:
                worker.conn.send(msg)
            except (OSError, ValueError, BrokenPipeError) as exc:
                raise ShardCrashed(
                    f"shard {worker.shard_id} control pipe broken"
                ) from exc
            reply = await self._recv(worker)
        if reply[0] == "error":
            raise ShardError(f"shard {worker.shard_id}: {reply[1]}")
        return reply[1]

    # -- RPCs --------------------------------------------------------------

    async def lookup(self, src_id: int, point) -> dict:
        return await self._call(
            self._owner(src_id),
            ("lookup", int(src_id), [float(x) for x in point]),
        )

    async def route(self, src_id: int, dst_id: int) -> dict:
        if dst_id not in self.assignment:
            raise KeyError(f"node {dst_id} is not a cluster member")
        return await self._call(
            self._owner(src_id), ("route", int(src_id), int(dst_id))
        )

    async def lookup_map(self, querier_id: int, region) -> dict:
        return await self._call(
            self._owner(querier_id),
            ("lookup_map", int(querier_id), int(region.level), list(region.cell)),
        )

    async def publish(self, node_id: int) -> dict:
        return await self._call(self._owner(node_id), ("publish", int(node_id)))

    async def ping(self, src_id: int, dst_id: int, seq: int = 0) -> dict:
        return await self._call(
            self._owner(src_id), ("ping", int(src_id), int(dst_id), int(seq))
        )

    # -- load --------------------------------------------------------------

    async def run_load(
        self,
        rate: float,
        count: int,
        seed: int = 0,
        op: str = "lookup",
        concurrency: int = 0,
    ) -> LoadReport:
        """Scatter a load run across every shard, gather one report.

        Each worker drives its slice with sources drawn from its own
        members (targets stay cluster-wide, so cross-shard traffic is
        whatever the tessellation dictates), all shards running
        concurrently on their own cores.  Counts, rates and the
        closed-loop budget split evenly; per-shard seeds are derived
        from ``seed`` so the workload stays a pure function of it.
        """
        shards = len(self.workers)
        base, extra = divmod(count, shards)
        closed = concurrency > 0
        conc_base, conc_extra = divmod(concurrency, shards) if closed else (0, 0)
        calls = []
        for i, worker in enumerate(self.workers):
            slice_count = base + (1 if i < extra else 0)
            if slice_count == 0:
                continue
            spec = {
                "rate": rate / shards if rate else 0.0,
                "count": slice_count,
                "seed": seed + 7919 * i,
                "op": op,
                "concurrency": (
                    max(1, conc_base + (1 if i < conc_extra else 0))
                    if closed
                    else 0
                ),
            }
            calls.append(self._call(worker, ("load", spec)))
        slices = await asyncio.gather(*calls)
        report = LoadReport(
            ops=sum(s["ops"] for s in slices),
            errors=sum(s["errors"] for s in slices),
            offered_rate=0.0 if closed else float(rate),
            mode="closed" if closed else "open",
            concurrency=sum(s["concurrency"] for s in slices),
        )
        for s in slices:
            report.latencies_ms.extend(s["latencies_ms"])
            report.error_latencies_ms.extend(s["error_latencies_ms"])
        report.wall_duration_s = max(s["wall_duration_s"] for s in slices)
        report.retries = sum(s["retries"] for s in slices)
        report.backoff_ms = sum(s["backoff_ms"] for s in slices)
        report.busy_errors = sum(s["busy_errors"] for s in slices)
        report.breaker_fastfails = sum(s["breaker_fastfails"] for s in slices)
        report.shed = sum(s["shed"] for s in slices)
        report.loop = slices[0]["loop"] if slices else ""
        return report

    # -- aggregation -------------------------------------------------------

    async def counters(self) -> dict:
        """Cluster-wide counters, summed across every shard replica."""
        per_shard = await asyncio.gather(
            *(self._call(w, ("counters",)) for w in self.workers)
        )
        merged = {"events": {}, "metrics": {}, "transport": {}, "overload": {}}
        for shard in per_shard:
            for section, values in shard.items():
                bucket = merged.setdefault(section, {})
                for key, value in values.items():
                    if isinstance(value, (int, float)):
                        bucket[key] = bucket.get(key, 0) + value
        merged["per_shard"] = per_shard
        return merged

    async def overload_counters(self) -> dict:
        return (await self.counters())["overload"]

    def boot_report(self) -> dict:
        """Per-shard boot walls + membership split (bench bookkeeping)."""
        return {
            "wall_boot_s_per_shard": [w.boot_s for w in self.workers],
            "owned_per_shard": [w.owned for w in self.workers],
        }

    # -- churn -------------------------------------------------------------

    async def crash(self, node_id: int) -> dict:
        """Crash-stop a member's machine on every replica (broadcast)."""
        if node_id not in self.assignment:
            raise KeyError(f"node {node_id} is not a cluster member")
        results = await asyncio.gather(
            *(self._call(w, ("crash", int(node_id))) for w in self.workers)
        )
        victims = results[0]
        host = self.routing.host_of(node_id)
        self._parent_faults().crash_host(host)
        for victim in victims:
            self.overlay.store.drop_hosted_by(victim)
            self.crashed[victim] = host
            self.assignment.pop(victim, None)
        return {"victims": victims}

    async def leave(self, node_id: int) -> None:
        """Graceful departure, broadcast to every replica."""
        if node_id not in self.assignment:
            raise KeyError(f"node {node_id} is not a cluster member")
        await asyncio.gather(
            *(self._call(w, ("leave", int(node_id))) for w in self.workers)
        )
        self.overlay.remove_node(node_id, graceful=True)
        self.assignment.pop(node_id, None)

    def _parent_faults(self):
        if self.network.faults is None:
            from repro.netsim.faults import FaultPlan

            self.network.arm_faults(FaultPlan(), seed=self.config.fault_seed)
        return self.network.faults

    async def enable_recovery(self, params=None, seed: int = 0xFD):
        """Unsupported: raises a typed :class:`NotSupportedError`.

        The wire-level SWIM loop would have to probe across worker
        processes; porting it onto the TCP peering plane is the
        tracked next step (ROADMAP, DESIGN.md §13).  Until then
        crash/leave injection flows over the control channel, and the
        management plane reports ``recovery: unavailable (sharded)``
        in ``/health`` instead of surfacing this as a server error.
        """
        raise NotSupportedError(
            "the wire-level SWIM recovery loop does not span shard "
            "workers yet (port it onto the TCP peering plane -- see "
            "DESIGN.md §13 and the ROADMAP item); crash/leave "
            "injection flows over the control channel instead"
        )

    # -- sim parity --------------------------------------------------------

    def build_reference_sim(self) -> TopologyAwareOverlay:
        """A fresh synchronous overlay, built the way the replicas were."""
        network = make_network(self.config.network)
        sim = TopologyAwareOverlay(network, self.config.overlay)
        build = sim.build_bulk if self.config.bulk_boot else sim.build
        build(self.config.nodes)
        return sim

    async def verify_against_sim(
        self, lookups: int = 256, routes: int = 64, seed: int = 0xC0FFEE, sim=None
    ) -> dict:
        """The identical parity bar :class:`Cluster` is held to."""
        return await verify_cluster_against_sim(
            self, lookups=lookups, routes=routes, seed=seed, sim=sim
        )
