"""The live cluster harness: boot N actors, join over the wire, serve RPCs.

:class:`Cluster` owns one simulated physical :class:`Network` (the
latency ground truth and telemetry sink), one
:class:`TopologyAwareOverlay` (the Can/eCAN + soft-state stack the
actors wrap), a pluggable transport, and one
:class:`~repro.runtime.node.NodeProcess` per member.  Booting
replays the simulator's build loop *over the wire*: the first node is
seeded locally, every later member starts as an anonymous joiner
actor that sends a JOIN frame to the bootstrap node, whose actor
admits it (landmark measurement, CAN join, soft-state publication,
policy-driven neighbor selection -- the full topology-aware join) and
ACKs back the assigned node id and physical host.  Joins are awaited
sequentially, so membership, zones and tables are a pure function of
(config, seed) -- byte-identical to a synchronous
``TopologyAwareOverlay.build`` with the same parameters, which is
exactly what :meth:`verify_against_sim` checks.

RPCs (``route``, ``lookup``, ``lookup_map``, ``publish``, ``ping``)
run hop-by-hop over the transport; with latency shaping enabled the
end-to-end wall latency reproduces the transit-stub RTT matrix at the
configured time dilation.
"""

from __future__ import annotations

import asyncio
import itertools
import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.builder import TopologyAwareOverlay
from repro.core.config import NetworkParams, OverlayParams, make_network
from repro.netsim.faults import Partition
from repro.runtime.node import NodeProcess
from repro.runtime.transport import make_transport
from repro.runtime.wire import MsgType


class RoutingView:
    """The routing + soft-state surface an actor is allowed to touch.

    Actors used to reach into the cluster-global
    ``cluster.overlay.ecan`` for their forwarding decisions, which
    made the overlay state an implicit shared singleton -- impossible
    to replicate into shard workers.  Every cluster (single-process or
    one shard worker) now owns a ``RoutingView`` over *its* overlay
    instance, and :class:`~repro.runtime.node.NodeProcess` goes
    through it exclusively: in a sharded cluster each worker process
    rebuilds the same deterministic overlay from (config, seed) and
    wraps its private replica, so routing state is replicated into
    shards instead of shared across them.
    """

    __slots__ = ("overlay", "ecan", "store")

    def __init__(self, overlay):
        self.overlay = overlay
        self.ecan = overlay.ecan
        self.store = overlay.store

    @property
    def dims(self) -> int:
        return self.ecan.dims

    def next_hop(self, node_id: int, point, visited=None) -> tuple:
        """One forwarding decision (the fault-free sim ``route`` branch)."""
        return self.ecan.next_hop(node_id, point, visited=visited)

    def zone_center(self, node_id: int):
        return self.ecan.can.nodes[node_id].zone.center()

    def host_of(self, node_id: int) -> int:
        return int(self.ecan.can.nodes[node_id].host)


@dataclass
class ClusterConfig:
    """Everything a live cluster needs to boot deterministically."""

    nodes: int = 16
    network: NetworkParams = field(default_factory=NetworkParams)
    overlay: OverlayParams = field(default_factory=OverlayParams)
    #: "loopback" or "tcp"
    transport: str = "loopback"
    #: frame payload encoding: "packed" (struct fast path for ROUTE/
    #: LOOKUP/ACK, JSON fallback elsewhere) or "json" (everything)
    wire_encoding: str = "packed"
    #: wall seconds per simulated ms of one-way latency (0 = no shaping)
    latency_scale: float = 0.0
    #: optional :class:`~repro.netsim.faults.FaultPlan` applied at the
    #: transport (drop/partition decisions per frame)
    fault_plan: object = None
    fault_seed: int = 0
    request_timeout: float = 30.0
    max_hops: int = 512
    #: wall seconds between live failure-detector rounds
    heartbeat_period: float = 0.25
    #: wall seconds one HEARTBEAT probe waits before counting as silence
    probe_timeout: float = 0.5
    #: optional :class:`~repro.core.reliability.RetryPolicy` resending
    #: timed-out/undeliverable requests (delays read as wall ms); the
    #: shared instance accumulates cluster-wide retry accounting
    retry: object = None
    #: boot through the builder's batched bulk-join fast path instead
    #: of sequential wire JOINs (same membership/zones, tables may
    #: differ; for large soak clusters where O(N) wire joins dominate)
    bulk_boot: bool = False
    #: data-lane depth cap per actor (ROUTE/LOOKUP/PUBLISH); frames
    #: past the cap are shed with a BUSY reply.  None = unbounded
    #: (the pre-overload-protection behavior).
    mailbox_cap: int = 1024
    #: which frame a full data lane sheds: "oldest" drops the queue
    #: head and admits the arrival, "newest" refuses the arrival
    shed_policy: str = "oldest"
    #: consecutive BUSY/timeout failures that open a peer's circuit
    #: breaker (0 disables breakers entirely)
    breaker_threshold: int = 8
    #: seconds an open breaker waits before its half-open probe
    breaker_reset_s: float = 1.0
    #: extra resend attempts granted to BUSY sheds (decorrelated
    #: jitter, separate from the loss-retry budget)
    busy_retries: int = 2
    #: decorrelated-jitter ladder for BUSY retries (wall ms)
    busy_backoff_base_ms: float = 2.0
    busy_backoff_cap_ms: float = 250.0
    #: derive per-peer request timeouts from EWMA RTT + variance
    #: (Jacobson RTO) instead of the static request_timeout
    adaptive_timeout: bool = True
    #: floor for the adaptive RTO (seconds)
    rto_min_s: float = 0.25
    #: per-peer TCP write-queue cap in frames (tcp transport only);
    #: frames past the cap drop and count as backpressure
    outbox_cap: int = 8192
    #: worker processes the membership shards across (1 = the classic
    #: single-process cluster; >1 boots a
    #: :class:`~repro.runtime.shard.ShardedCluster`, one event loop
    #: per worker, cross-shard frames over a TCP peering socket)
    shards: int = 1

    def __post_init__(self):
        if self.nodes < 1:
            raise ValueError("a cluster needs at least one node")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shards > self.nodes:
            raise ValueError(
                f"cannot split {self.nodes} nodes across {self.shards} shards"
            )
        if self.shed_policy not in ("oldest", "newest"):
            raise ValueError(
                f"shed_policy must be 'oldest' or 'newest', got {self.shed_policy!r}"
            )
        if self.mailbox_cap is not None and self.mailbox_cap < 1:
            raise ValueError("mailbox_cap must be >= 1 (or None for unbounded)")
        if self.breaker_threshold < 0:
            raise ValueError("breaker_threshold must be >= 0 (0 disables)")
        if self.busy_retries < 0:
            raise ValueError("busy_retries must be >= 0")
        if self.overlay.num_nodes != self.nodes:
            self.overlay = replace(self.overlay, num_nodes=self.nodes)


class Cluster:
    """N live overlay-node actors over one wire transport."""

    def __init__(self, config: ClusterConfig):
        self.config = config
        self.network = make_network(config.network)
        self.overlay = TopologyAwareOverlay(self.network, config.overlay)
        #: the only overlay surface actors touch (replicated per shard
        #: in a :class:`~repro.runtime.shard.ShardedCluster` worker)
        self.routing = RoutingView(self.overlay)
        self.transport = self._make_transport()
        #: node id -> NodeProcess, in join order
        self.actors: dict = {}
        #: crash-stopped node id -> physical host (corpses; the overlay
        #: still lists them until the failure detector repairs)
        self.crashed: dict = {}
        #: armed by :meth:`enable_recovery`
        self.recovery = None
        self._rejoin_ids = itertools.count(1)
        self._started = False

    def _make_transport(self):
        """Build this cluster's transport (shard workers override)."""
        config = self.config
        faults = None
        if config.fault_plan is not None:
            # transport-level faults reuse the simulator's plans but run
            # on a *detached* injector: frames drop deterministically
            # while the overlay stack itself stays on the perfect path
            from repro.netsim.faults import FaultInjector

            faults = FaultInjector(
                self.network, config.fault_plan, seed=config.fault_seed
            )
            faults.armed = True
        transport_kwargs = dict(
            oracle=self.network.oracle,
            latency_scale=config.latency_scale,
            faults=faults,
            encoding=config.wire_encoding,
        )
        if config.transport == "tcp":
            transport_kwargs["outbox_cap"] = config.outbox_cap
        return make_transport(config.transport, **transport_kwargs)

    # -- membership --------------------------------------------------------

    @property
    def node_ids(self) -> list:
        return list(self.actors)

    def __len__(self) -> int:
        return len(self.actors)

    @property
    def bootstrap(self) -> NodeProcess:
        return next(iter(self.actors.values()))

    def admit(self, capacity: float = 1.0) -> tuple:
        """Perform one topology-aware join (bootstrap-actor duty).

        Same call sequence as the simulator's build loop, so the k-th
        admission consumes exactly the k-th draw of every builder RNG
        stream.  Returns ``(node_id, host)``.
        """
        node_id = self.overlay.add_node(capacity=capacity)
        host = self.overlay.ecan.can.nodes[node_id].host
        self.network.telemetry.bump("runtime_join")
        return node_id, int(host)

    async def start(self) -> "Cluster":
        """Boot the cluster: seed the first node, join the rest over the wire."""
        if self._started:
            return self
        self._started = True
        await self.transport.start()
        with self.network.telemetry.phase("runtime_boot"):
            if self.config.bulk_boot:
                await self.start_actors(self.overlay.build_bulk(self.config.nodes))
                return self
            node_id, host = self.admit()
            seed_actor = NodeProcess(self, node_id, host=host)
            await seed_actor.start()
            self.actors[node_id] = seed_actor
            for k in range(1, self.config.nodes):
                joiner = NodeProcess(self, f"joiner:{k}")
                await joiner.start()
                ack = await joiner.request(self.bootstrap.addr, MsgType.JOIN, {})
                await joiner.rebind(int(ack["node_id"]), host=int(ack["host"]))
                self.actors[joiner.addr] = joiner
        return self

    #: actor binds awaited concurrently per batch during a bulk boot
    BOOT_BATCH = 64

    async def start_actors(self, node_ids) -> None:
        """Bind actors for already-admitted members, batched.

        The post-bulk-boot handshake used to await one bind at a time;
        on the TCP transport every bind starts an ``asyncio`` server,
        so a 256-node boot paid 256 sequential server setups.  Batching
        keeps membership order (the actors dict is filled before any
        bind) while overlapping the socket work inside each batch.
        """
        batch = []
        for node_id in node_ids:
            actor = NodeProcess(self, node_id, host=self.routing.host_of(node_id))
            self.actors[node_id] = actor
            self.network.telemetry.bump("runtime_join")
            batch.append(actor)
            if len(batch) >= self.BOOT_BATCH:
                await asyncio.gather(*(a.start() for a in batch))
                batch.clear()
        if batch:
            await asyncio.gather(*(a.start() for a in batch))

    async def stop(self) -> None:
        if self.recovery is not None:
            await self.recovery.stop()
            self.recovery = None
        for actor in list(self.actors.values()):
            await actor.stop()
        self.actors.clear()
        await self.transport.close()
        self._started = False

    async def __aenter__(self) -> "Cluster":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    def _actor(self, node_id: int) -> NodeProcess:
        actor = self.actors.get(node_id)
        if actor is None:
            raise KeyError(f"node {node_id} is not a cluster member")
        return actor

    # -- churn & self-healing ----------------------------------------------

    def _ensure_faults(self):
        """Arm a (possibly empty) injector over the network, lazily.

        Crash semantics -- the crashed-host ledger that
        :func:`~repro.core.recovery.check_invariants` and the store's
        copy-death accounting read -- live on ``network.faults``; live
        churn arms an empty plan on first use so fault-free runs keep
        the perfect-network fast path until the first crash.
        """
        if self.network.faults is None:
            from repro.netsim.faults import FaultPlan

            self.network.arm_faults(FaultPlan(), seed=self.config.fault_seed)
        return self.network.faults

    def _injectors(self) -> list:
        """Every injector that must agree on crash/partition state.

        The transport consults only its own (possibly detached)
        injector for frame drops; when none was configured the
        network's injector is adopted so wire traffic sees the same
        crashes and partitions the overlay bookkeeping does.
        """
        faults = self._ensure_faults()
        if self.transport.faults is None:
            self.transport.faults = faults
        if self.transport.faults is faults:
            return [faults]
        return [faults, self.transport.faults]

    async def crash(self, node_id: int) -> dict:
        """Crash-stop a member's *machine* with no immediate repair.

        Crash semantics are host-level, matching the simulator's
        ``crash_node``: physical hosts are shared, so when the machine
        dies every member process it runs dies with it.  The actors
        die mid-flight (pending requests fail fast), the host stops
        answering probes and frames, and every map copy the victims
        hosted vanishes -- but the overlay still lists the corpses
        until the wire failure detector (:meth:`enable_recovery`)
        confirms the deaths and repairs zones, tables and replicas.
        Returns the victim list and copy-loss summary.
        """
        host = int(self._actor(node_id).host)
        victims = sorted(
            n for n, actor in self.actors.items() if int(actor.host) == host
        )
        for injector in self._injectors():
            injector.crash_host(host)
        salvageable = lost = 0
        for victim in victims:
            actor = self.actors.pop(victim)
            await actor.stop()
            kept, gone = self.overlay.store.drop_hosted_by(victim)
            salvageable += len(kept)
            lost += len(gone)
            self.crashed[victim] = host
            self.network.telemetry.emit(
                "runtime_crash", node_id=victim, host=host, lost=len(gone)
            )
        return {"victims": victims, "salvageable": salvageable, "lost": lost}

    async def kill_fraction(self, fraction: float, seed: int = 0) -> list:
        """Crash ``fraction`` of the membership at once (never the
        bootstrap's machine).  Seed victims are drawn deterministically
        from ``seed``; each crash takes its whole host down, so the
        returned node-id list can run a little over ``fraction``."""
        rng = np.random.default_rng(seed)
        boot_host = int(self.bootstrap.host)
        pool = sorted(
            n for n, actor in self.actors.items() if int(actor.host) != boot_host
        )
        count = min(len(pool), max(1, int(round(fraction * len(self)))))
        picks = rng.choice(len(pool), size=count, replace=False)
        victims: list = []
        for victim in sorted(pool[int(i)] for i in picks):
            if victim in self.actors:  # not already dead via a co-hosted pick
                victims.extend((await self.crash(victim))["victims"])
        return sorted(victims)

    async def leave(self, node_id: int) -> None:
        """Graceful departure: withdraw records, hand zones over, stop."""
        actor = self._actor(node_id)
        await actor.stop()
        del self.actors[node_id]
        self.overlay.remove_node(node_id, graceful=True)

    async def restart(self, node_id: int = None) -> int:
        """Start a fresh process that (re)joins over the wire.

        Crash-stop destroys the old identity for good, so a restart is
        a brand-new member admitted through the normal JOIN path --
        landmark measurement, CAN join, publication, table build.
        ``node_id`` optionally names the crashed member being replaced
        (clears its crash-ledger entry).  Returns the new node id.
        """
        if node_id is not None:
            self.crashed.pop(node_id, None)
        joiner = NodeProcess(self, f"rejoin:{next(self._rejoin_ids)}")
        await joiner.start()
        ack = await joiner.request(self.bootstrap.addr, MsgType.JOIN, {})
        await joiner.rebind(int(ack["node_id"]), host=int(ack["host"]))
        self.actors[joiner.addr] = joiner
        self.network.telemetry.bump("runtime_join")
        return joiner.addr

    def partition(self, domains) -> None:
        """Sever ``domains`` from the rest of the topology, open-ended.

        Installs an active :class:`~repro.netsim.faults.Partition`
        window (``end = inf``) on every injector, so frames crossing
        the cut drop and the failure detector shields its verdicts
        against the severed side.  :meth:`heal_partition` ends it.
        """
        window = Partition(
            start=self.network.clock.now, end=math.inf, domains=tuple(domains)
        )
        for injector in self._injectors():
            injector.plan = replace(
                injector.plan, partitions=injector.plan.partitions + (window,)
            )

    def heal_partition(self) -> int:
        """End every open-ended partition; returns how many were healed.

        Live partitions have no scheduled end (the sim clock does not
        advance under the runtime), so after healing the caller should
        run ``recovery.reconcile()`` to re-probe shielded suspects.
        """
        healed = 0
        for injector in self._injectors():
            keep = tuple(
                p for p in injector.plan.partitions if p.end != math.inf
            )
            healed = max(healed, len(injector.plan.partitions) - len(keep))
            injector.plan = replace(injector.plan, partitions=keep)
        return healed

    async def enable_recovery(self, params=None, seed: int = 0xFD):
        """Arm the wire-level SWIM loop + recovery stack (idempotent).

        Returns the running
        :class:`~repro.runtime.recovery.RuntimeRecovery`.
        """
        if self.recovery is None:
            from repro.runtime.recovery import RuntimeRecovery

            self.recovery = RuntimeRecovery(self, params, seed=seed)
            await self.recovery.start()
        return self.recovery

    def retry_counters(self) -> dict:
        """Cluster-wide request resend accounting (see ``config.retry``)."""
        policy = self.config.retry
        if policy is None:
            return {"retries": 0, "backoff_ms": 0.0}
        return {
            "retries": int(policy.retries),
            "backoff_ms": float(policy.backoff_slept_ms),
        }

    def overload_counters(self) -> dict:
        """Cluster-wide overload-protection accounting.

        Aggregates the telemetry counters the shed/BUSY path bumps
        with the per-actor circuit-breaker state machines and the TCP
        transport's backpressure drops -- the numbers the overload
        bench records per offered-load cell.
        """
        counters = self.network.telemetry.event_counts
        breakers = [
            breaker
            for actor in self.actors.values()
            for breaker in actor._breakers.values()
        ]
        return {
            "shed": int(counters.get("runtime_shed", 0)),
            "busy_replies": int(counters.get("runtime_busy_reply", 0)),
            "busy_retries": sum(a.busy_retries for a in self.actors.values()),
            "crash_dropped": int(counters.get("runtime_crash_dropped", 0)),
            "breaker_opens": sum(b.opens for b in breakers),
            "breaker_closes": sum(b.closes for b in breakers),
            "breaker_fastfails": int(counters.get("runtime_breaker_fastfail", 0)),
            "breakers_open_now": sum(
                1 for b in breakers if b.state != b.CLOSED
            ),
            "backpressure_drops": int(
                getattr(self.transport, "backpressure_drops", 0)
            ),
        }

    async def counters(self) -> dict:
        """Cluster-wide counters in the sharded harness's aggregate shape.

        Mirrors :meth:`~repro.runtime.shard.ShardedCluster.counters`
        (``events`` / ``metrics`` / ``transport`` / ``overload``
        sections) so the management plane reads one surface regardless
        of which harness it owns.  Async for the same reason: on a
        sharded cluster the numbers ride the control channel.
        """
        snapshot = self.network.telemetry.snapshot()
        return {
            "events": snapshot["events"],
            "metrics": snapshot["counters"],
            "transport": self.transport.counters(),
            "overload": self.overload_counters(),
        }

    # -- RPCs --------------------------------------------------------------

    async def lookup(self, src_id: int, point) -> dict:
        """Key lookup: route ``point`` from ``src_id`` to its owner.

        Returns ``{"owner", "path", "hops"}`` from the final ACK.
        """
        result = await self._actor(src_id).rpc_route(point, op="lookup")
        self.network.telemetry.bump("runtime_lookup")
        return result

    async def route(self, src_id: int, dst_id: int) -> dict:
        """Route from ``src_id`` to member ``dst_id``'s zone center."""
        center = self.routing.zone_center(dst_id)
        result = await self._actor(src_id).rpc_route(center, op="route")
        self.network.telemetry.bump("runtime_route")
        return result

    async def lookup_map(self, querier_id: int, region) -> dict:
        """Soft-state map read: route to the serving node, read its shard."""
        store = self.routing.store
        record = store.registry[querier_id]
        position = store.position_of(record, region)
        actor = self._actor(querier_id)
        ack = await actor.request(
            actor.addr,
            MsgType.ROUTE,
            {
                "point": [float(x) for x in position],
                "path": [actor.addr],
                "op": "lookup",
                "querier": querier_id,
                "level": region.level,
                "cell": list(region.cell),
            },
        )
        self.network.telemetry.bump("runtime_map_lookup")
        return ack

    async def publish(self, node_id: int) -> dict:
        """Ask ``node_id``'s actor to (re)publish its soft-state record."""
        actor = self._actor(node_id)
        return await actor.request(actor.addr, MsgType.PUBLISH, {})

    async def ping(self, src_id: int, dst_id: int, seq: int = 0) -> dict:
        """One heartbeat round-trip between two members."""
        return await self._actor(src_id).request(
            dst_id, MsgType.HEARTBEAT, {"seq": seq}
        )

    async def run_load(
        self,
        rate: float,
        count: int,
        seed: int = 0,
        op: str = "lookup",
        concurrency: int = 0,
    ):
        """Drive a load run against this cluster (method form of
        :func:`~repro.runtime.loadgen.run_load`, matching the sharded
        harness so callers need not care which one they boot)."""
        from repro.runtime.loadgen import run_load

        return await run_load(
            self, rate=rate, count=count, seed=seed, op=op,
            concurrency=concurrency,
        )

    # -- sim parity --------------------------------------------------------

    def build_reference_sim(self) -> TopologyAwareOverlay:
        """A fresh synchronous overlay from this cluster's (config, seed)."""
        network = make_network(self.config.network)
        sim = TopologyAwareOverlay(network, self.config.overlay)
        sim.build(self.config.nodes)
        return sim

    async def verify_against_sim(
        self, lookups: int = 256, routes: int = 64, seed: int = 0xC0FFEE, sim=None
    ) -> dict:
        """Cross-validate the live cluster against the synchronous simulator.

        Builds an *independent* sim overlay with the same (config,
        seed), replays a seeded workload on both sides, and compares
        lookup owners and route endpoints.  Returns a summary dict;
        ``ok`` is True only if every comparison matched bit-for-bit.
        """
        return await verify_cluster_against_sim(
            self, lookups=lookups, routes=routes, seed=seed, sim=sim
        )


async def verify_cluster_against_sim(
    cluster, lookups: int = 256, routes: int = 64, seed: int = 0xC0FFEE, sim=None
) -> dict:
    """The sim-parity check, over any cluster-shaped harness.

    Needs only ``node_ids``, ``routing``, async ``lookup``/``route``
    and ``build_reference_sim`` from ``cluster``, so the single-process
    :class:`Cluster` and the multi-process
    :class:`~repro.runtime.shard.ShardedCluster` share one parity
    definition -- a sharded run is held to exactly the same
    bit-identical owners/endpoints bar as the in-process one.
    """
    if sim is None:
        sim = cluster.build_reference_sim()
    rng = np.random.default_rng(seed)
    ids = np.array(cluster.node_ids)
    dims = cluster.routing.dims
    mismatches = 0
    for i in range(lookups):
        src = int(ids[int(rng.integers(0, len(ids)))])
        point = tuple(float(x) for x in rng.random(dims))
        live = await cluster.lookup(src, point)
        sim_result = sim.ecan.route(src, point, category="parity_check")
        if not sim_result.success or live["owner"] != sim_result.owner:
            mismatches += 1
    for i in range(routes):
        src, dst = (int(x) for x in rng.choice(ids, size=2, replace=False))
        live = await cluster.route(src, dst)
        sim_dst = sim.ecan.can.nodes[dst]
        sim_result = sim.ecan.route(
            src, sim_dst.zone.center(), category="parity_check"
        )
        endpoint = sim_result.path[-1] if sim_result.success else None
        if live["path"][-1] != endpoint or live["owner"] != endpoint:
            mismatches += 1
    checked = lookups + routes
    return {
        "checked": checked,
        "lookups": lookups,
        "routes": routes,
        "mismatches": mismatches,
        "ok": mismatches == 0,
    }


def make_cluster(config: ClusterConfig):
    """Build the right harness for ``config``.

    ``config.shards == 1`` keeps the classic single-process
    :class:`Cluster`; anything larger boots a multi-process
    :class:`~repro.runtime.shard.ShardedCluster` (imported lazily --
    the shard machinery pulls in :mod:`multiprocessing`).
    """
    if config.shards <= 1:
        return Cluster(config)
    from repro.runtime.shard import ShardedCluster

    return ShardedCluster(config)
