"""Wire-level self-healing for the live runtime.

The simulator's recovery stack (:mod:`repro.core.recovery`) runs on
the simulated clock: probes are charged RTT calls and repairs fire
inside clock callbacks.  The live runtime has no simulated time --
only wall-clock heartbeats over a real transport -- so this module
ports the *detection* half to the event loop while reusing the
*repair* half unchanged.  That is the clock-abstraction seam:
:class:`RuntimeRecovery` renders SWIM verdicts from HEARTBEAT frames
(rotating direct probes, indirect k-probing through witness relays,
suspect/confirm bookkeeping, partition shielding), and every confirmed
death is handled by the very same
:class:`~repro.core.recovery.RecoveryManager` the simulator uses --
zone takeover, eager table invalidation, replica re-hosting and record
purging are clock-free state transformations, so they run identically
whether a simulated tick or a live verdict triggers them.

Probe semantics match :class:`~repro.core.recovery.FailureDetector`
round for round: in round ``r`` the ``i``-th member (sorted) probes
member ``i + 1 + (r mod (n-1))`` -- a fixed-point-free rotation --
with ``ping_attempts`` direct HEARTBEATs and, on silence, up to
``witnesses`` indirect probes relayed through random live peers
(``{"relay": target}`` ping-reqs answered by the witness's own
heartbeat round-trip).  Crashed members run no protocol but stay
probed until confirmed, and a verdict is held while an active
partition explains the silence.
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.core.recovery import DetectorParams, RecoveryManager
from repro.runtime.node import PeerBusy, RequestTimeout
from repro.runtime.wire import MsgType


class RuntimeRecovery:
    """SWIM failure detection + recovery, driven by a live cluster.

    Duck-types the detector interface :class:`RecoveryManager` and
    :func:`~repro.core.recovery.check_invariants` consume (``suspected``,
    ``confirmed_dead``, ``false_kills``, ``on_death``, ...), so the
    simulator's repair engine plugs in without modification.
    """

    def __init__(self, cluster, params: DetectorParams = None, seed: int = 0xFD):
        self.cluster = cluster
        if params is None:
            # one detector round per configured heartbeat period
            params = DetectorParams(
                period=cluster.config.heartbeat_period * 1000.0
            )
        self.params = params
        self.rng = np.random.default_rng(seed)
        #: node_id -> consecutive all-silent rounds observed
        self.suspected: dict = {}
        #: confirmed-dead node ids, in confirmation order
        self.confirmed_dead: list = []
        #: death verdicts against nodes whose process was in fact alive
        #: (the harness knows ground truth: the actor table)
        self.false_kills = 0
        #: suspicions cleared by a later answered probe
        self.refutations = 0
        #: verdicts deferred because a partition shielded the target
        self.shielded_verdicts = 0
        self.rounds = 0
        #: callbacks invoked as ``fn(node_id)`` on a confirmed death
        self.on_death: list = []
        #: the simulator's repair engine, reused verbatim (clock-free);
        #: registers its ``handle_death`` on :attr:`on_death`
        self.manager = RecoveryManager(cluster.overlay, self)
        self._task = None

    @property
    def period_s(self) -> float:
        """Wall seconds between detector rounds (``params.period`` is ms)."""
        return self.params.period / 1000.0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Arm the periodic detector round on the event loop."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def _run(self) -> None:
        while True:
            await asyncio.sleep(self.period_s)
            await self.tick()

    # -- probing -----------------------------------------------------------

    async def _heartbeat(self, prober: int, target: int, relay=None):
        """One HEARTBEAT round-trip; True / False / None (inconclusive).

        Probes never ride the cluster's request retry policy: SWIM's
        own attempt/witness schedule is the redundancy, and a silent
        probe must stay cheap.  On these transports every real absence
        *refuses the send*: a dead peer's endpoint is unbound and an
        active partition drops the frame at the sender, so both
        surface instantly as :class:`TransportError` -- that is the
        death evidence.  A timeout, by contrast, means the frame was
        accepted and the reply is merely late (event-loop congestion
        during a mass-kill round, a takeover repair burst), so it
        abstains (None) rather than counting as silence -- SWIM
        Lifeguard's local-health rule, without which a kill-33% event
        at a few hundred nodes snowballs into a false-kill cascade.
        """
        actor = self.cluster.actors.get(prober)
        if actor is None:
            return None  # the prober vanished; no evidence either way
        timeout = self.cluster.config.probe_timeout
        payload = {"seq": self.rounds}
        if relay is not None:
            payload["relay"] = relay
            payload["timeout"] = timeout
        try:
            ack = await actor.request(
                target, MsgType.HEARTBEAT, payload, timeout=timeout, retry=False
            )
        except PeerBusy:
            # an overloaded peer shed the probe -- but *it answered*:
            # only a live actor sends BUSY, so this is alive evidence,
            # never grounds for suspicion (overload must stay
            # distinguishable from death).  Unreachable today --
            # HEARTBEAT rides the unshed control lane -- but kept so
            # no future lane change can turn load into a crash verdict.
            return True
        except RequestTimeout:
            return None  # late, not absent
        except Exception:
            if self.cluster.actors.get(prober) is not actor:
                # the *prober* was stopped mid-flight (its pending
                # futures resolve with TransportError); that says
                # nothing about the target -- during a mass kill this
                # is the seed of a false-suspicion cascade
                return None
            return False
        if relay is None:
            return True
        return bool(ack.get("ok")) or None  # witness saying "no" is weak

    async def _probe_target(self, prober: int, target: int, members: list):
        """Direct probes, then indirect relays; tri-state verdict.

        True as soon as anything answered; False when at least one
        probe produced clean silence and none answered; None when
        every probe abstained (no evidence this round).
        """
        saw_silence = False
        for _ in range(max(1, self.params.ping_attempts)):
            verdict = await self._heartbeat(prober, target)
            if verdict:
                return True
            if verdict is False:
                saw_silence = True
        # the prober picks witnesses from its *view* of the membership,
        # which may include undetected corpses -- their relayed ping-req
        # then goes unanswered, exactly as in a real deployment
        pool = [
            m
            for m in members
            if m != prober and m != target and m not in self.suspected
        ]
        k = min(self.params.witnesses, len(pool))
        if k:
            picks = self.rng.choice(len(pool), size=k, replace=False)
            for index in picks:
                verdict = await self._heartbeat(pool[int(index)], target, relay=target)
                if verdict:
                    return True
        return False if saw_silence else None

    def _shielded(self, prober: int, target: int) -> bool:
        """Is the silence explainable by an active partition window?

        Mirrors the simulator's rule: a verdict is held when the
        partition severs prober from target, or when the target's
        domain sits inside the partitioned set (most witnesses are then
        on the far side, so silence proves nothing).
        """
        network = self.cluster.network
        faults = self.cluster.transport.faults or network.faults
        if faults is None:
            return False
        nodes = self.cluster.overlay.ecan.can.nodes
        prober_node = nodes.get(prober)
        target_node = nodes.get(target)
        if prober_node is None or target_node is None:
            return False  # departed while the round was in flight
        domains = network.topology.transit_domain
        prober_domain = int(domains[prober_node.host])
        target_domain = int(domains[target_node.host])
        return any(
            target_domain in p.domains or p.severs(prober_domain, target_domain)
            for p in faults.active_partitions()
        )

    # -- rounds ------------------------------------------------------------

    async def tick(self) -> list:
        """One detector round; returns nodes confirmed dead this round."""
        overlay = self.cluster.overlay
        nodes = overlay.ecan.can.nodes
        members = sorted(nodes)
        n = len(members)
        self.rounds += 1
        if n < 2:
            return []
        shift = 1 + (self.rounds - 1) % (n - 1)
        pairs = []
        for i, prober in enumerate(members):
            if prober not in self.cluster.actors:
                continue  # a dead process runs no protocol
            target = members[(i + shift) % n]
            if prober != target:
                pairs.append((prober, target))
        verdicts = await asyncio.gather(
            *(self._probe_target(p, t, members) for p, t in pairs)
        )

        # tri-state verdicts: only *clean* silence (False) feeds
        # suspicion; an abstained round (None) is no evidence at all
        answered = {t for (_, t), ok in zip(pairs, verdicts) if ok}
        silent = {t: p for (p, t), ok in zip(pairs, verdicts) if ok is False}
        telemetry = self.cluster.network.telemetry
        for target in answered:
            if target in self.suspected:
                del self.suspected[target]
                self.refutations += 1
                telemetry.emit("fd_refute", node_id=target)

        confirmed = []
        for target, prober in silent.items():
            if target in answered:
                continue
            if target not in nodes:
                continue  # departed while the round was in flight
            count = self.suspected.get(target, 0) + 1
            self.suspected[target] = count
            if count <= self.params.suspicion_periods:
                continue
            if self._shielded(prober, target):
                self.shielded_verdicts += 1
                continue
            confirmed.append(target)

        for target in confirmed:
            await self._confirm(target)
            # each confirm runs a synchronous takeover repair; yield so
            # in-flight replies of live peers get processed between them
            await asyncio.sleep(0)
        return confirmed

    async def _confirm(self, node_id: int) -> None:
        self.suspected.pop(node_id, None)
        self.confirmed_dead.append(node_id)
        genuinely_dead = node_id not in self.cluster.actors
        if not genuinely_dead:
            # falsely confirmed: the protocol has already decided, so
            # make the verdict true -- crash the accused node's host --
            # rather than leave a live actor the overlay no longer
            # recognizes (SWIM's "suicide on accusation")
            self.false_kills += 1
            await self.cluster.crash(node_id)
        self.cluster.network.telemetry.emit(
            "fd_confirm_death", node_id=node_id, false_positive=not genuinely_dead
        )
        for callback in list(self.on_death):
            callback(node_id)

    # -- reconciliation ----------------------------------------------------

    async def reprobe_suspects(self) -> int:
        """Direct-probe every suspect concurrently; any answer un-suspects
        (partition-heal refutation).  Returns suspicions cleared."""
        nodes = self.cluster.overlay.ecan.can.nodes
        probers = [
            m
            for m in sorted(self.cluster.actors)
            if m not in self.suspected and m in nodes
        ]
        if not probers:
            return 0

        async def attempt(target):
            for prober in probers[: self.params.witnesses + 1]:
                if await self._heartbeat(prober, target):
                    return target
            return None

        targets = [t for t in list(self.suspected) if t in nodes]
        for t in list(self.suspected):
            if t not in nodes:
                del self.suspected[t]
        cleared = 0
        for target in await asyncio.gather(*(attempt(t) for t in targets)):
            if target is not None and target in self.suspected:
                del self.suspected[target]
                self.refutations += 1
                cleared += 1
        return cleared

    async def reconcile(self) -> dict:
        """Anti-entropy after churn or a partition heal.

        The live counterpart of
        :meth:`~repro.core.recovery.RecoveryManager.reconcile`:
        suspects are re-probed over the wire (refuting shielded
        verdicts once the partition is gone), then the shared
        clock-free repairs run -- missed pub/sub notifications resync,
        crash-lost records are re-published by their subjects, and
        records naming departed members are purged.
        """
        overlay = self.cluster.overlay
        unsuspected = await self.reprobe_suspects()
        resynced = overlay.pubsub.resync_once()
        republished = self.manager.republish_lost()
        purged = self.manager.purge_dead_references()
        self.manager.reconciliations += 1
        return {
            "unsuspected": unsuspected,
            "resynced": resynced,
            "republished": republished,
            "purged": purged,
        }

    def scrub(self) -> dict:
        """One self-stabilization scrub pass (tables, records, index)."""
        return self.manager.scrub()
