"""Pluggable live transports: one interface, loopback and real TCP.

A transport moves wire frames between named endpoints (overlay node
ids, plus short-lived string addresses during joins).  Both flavours
share the same contract:

* ``bind(addr, handler, host=...)`` registers an endpoint; ``handler``
  is an async callable receiving each delivered :class:`Frame`;
* ``send(src, dst, frame)`` is fire-and-forget: it returns once the
  frame is *in flight* (True) or known undeliverable (False);
* **payload encoding** -- ``encoding="packed"`` selects the struct
  fast path of :mod:`repro.runtime.wire` for hot frame kinds (JSON
  stays the automatic fallback for everything else), ``"json"`` keeps
  every payload as JSON; both decode to identical payload dicts;
* **latency shaping** -- when built with a
  :class:`~repro.netsim.distance.DistanceOracle` and a
  ``latency_scale``, each frame is delayed by the one-way latency
  between the endpoints' physical hosts, so a live run reproduces the
  transit-stub RTT matrix at any chosen time dilation;
* **fault injection** -- an armed
  :class:`~repro.netsim.faults.FaultInjector` decides per-frame
  drops (message loss, partitions, crashed hosts) from the same
  deterministic plans the simulator uses.

:class:`LoopbackTransport` stays in-process (frames still round-trip
through the binary codec, so the wire format is exercised on every
test) and is deterministic and fast; unshaped frames are delivered
inline from ``send`` rather than through a spawned task, so the hot
path costs a codec round-trip and a mailbox put -- no scheduler hop.
:class:`TcpTransport` runs one ``asyncio.start_server`` per endpoint
on localhost and speaks the length-prefixed protocol over real
sockets; endpoints may live in different processes as long as they
share the address book.  Unshaped TCP sends coalesce: frames queue in
a per-destination outbox and one flusher task writes the whole batch
and awaits ``drain()`` once per flush -- explicit backpressure without
a syscall-and-drain per frame.
"""

from __future__ import annotations

import asyncio

from repro.runtime.wire import (
    Frame,
    FrameDecoder,
    ProtocolError,
    decode_frame,
    encode_frame,
    roundtrip_payload,
)


class TransportError(Exception):
    """An endpoint could not be reached (unbound, closed, refused)."""


class Transport:
    """Shared plumbing: endpoint registry, encoding, shaping, faults."""

    #: short name used by :func:`make_transport` and reports
    kind = "base"

    def __init__(
        self, oracle=None, latency_scale: float = 0.0, faults=None,
        encoding: str = "json",
    ):
        if encoding not in ("json", "packed"):
            raise ValueError(
                f"unknown wire encoding {encoding!r} (want 'json' or 'packed')"
            )
        #: :class:`DistanceOracle` driving per-frame delays (or None)
        self.oracle = oracle
        #: wall seconds of delay per simulated millisecond of one-way
        #: latency; 0 disables shaping entirely
        self.latency_scale = float(latency_scale)
        #: armed :class:`FaultInjector` deciding drops (or None)
        self.faults = faults
        #: payload encoding: "json" or "packed" (struct fast path)
        self.encoding = encoding
        self._packed = encoding == "packed"
        #: addr -> physical host id, for shaping and fault decisions
        self.hosts: dict = {}
        self.sent = 0
        self.dropped = 0
        self.delivered = 0
        self._tasks: set = set()
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Prepare shared machinery (no-op for both built-ins)."""

    async def bind(self, addr, handler, host: int = None) -> None:
        raise NotImplementedError

    async def unbind(self, addr) -> None:
        raise NotImplementedError

    async def close(self) -> None:
        self._closed = True
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()

    def counters(self) -> dict:
        """Frame-accounting totals, in the shape stats aggregation merges.

        Subclasses with extra planes (the sharded runtime's
        :class:`~repro.runtime.shard.PeeringTransport`) override this
        with their own breakdown; the keys stay summable numbers.
        """
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "backpressure_drops": int(getattr(self, "backpressure_drops", 0)),
        }

    # -- shaping and faults ------------------------------------------------

    def delay_for(self, src, dst) -> float:
        """Wall seconds this frame spends 'on the wire'."""
        if self.oracle is None or self.latency_scale <= 0.0:
            return 0.0
        src_host = self.hosts.get(src)
        dst_host = self.hosts.get(dst)
        if src_host is None or dst_host is None or src_host == dst_host:
            return 0.0
        return float(self.oracle.distance(src_host, dst_host)) * self.latency_scale

    def drops(self, src, dst) -> bool:
        """Would the armed fault plan drop this frame?"""
        if self.faults is None or not self.faults.armed:
            return False
        src_host = self.hosts.get(src)
        dst_host = self.hosts.get(dst)
        if src_host is None or dst_host is None:
            return False
        return not self.faults.deliver(src_host, dst_host)

    def _spawn(self, coroutine) -> None:
        task = asyncio.get_running_loop().create_task(coroutine)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def send(self, src, dst, frame: Frame) -> bool:
        raise NotImplementedError


class LoopbackTransport(Transport):
    """In-process delivery through the codec: fast and deterministic."""

    kind = "loopback"

    def __init__(
        self, oracle=None, latency_scale: float = 0.0, faults=None,
        encoding: str = "json",
    ):
        super().__init__(oracle, latency_scale, faults, encoding)
        self._handlers: dict = {}

    async def bind(self, addr, handler, host: int = None) -> None:
        if addr in self._handlers:
            raise TransportError(f"address {addr!r} already bound")
        self._handlers[addr] = handler
        if host is not None:
            self.hosts[addr] = int(host)

    async def unbind(self, addr) -> None:
        self._handlers.pop(addr, None)
        self.hosts.pop(addr, None)

    async def send(self, src, dst, frame: Frame) -> bool:
        if self._closed:
            raise TransportError("transport is closed")
        self.sent += 1
        # round-trip the payload through the codec so loopback runs
        # carry exactly what TCP would decode (the fixed 16-byte
        # header needs no such fidelity check per frame)
        frame = Frame(
            frame.kind,
            frame.request_id,
            roundtrip_payload(frame.kind, frame.payload, self._packed),
        )
        if self.drops(src, dst):
            self.dropped += 1
            return False
        handler = self._handlers.get(dst)
        if handler is None:
            self.dropped += 1
            return False
        delay = self.delay_for(src, dst)
        if delay <= 0.0:
            # unshaped fast path: deliver inline -- the handler only
            # enqueues (mailbox put / future resolution), so this never
            # blocks and saves a task spawn plus a scheduler round-trip
            # per frame
            self.delivered += 1
            await handler(frame)
            return True
        self._spawn(self._deliver(dst, frame, delay))
        return True

    async def _deliver(self, dst, frame: Frame, delay: float) -> None:
        if delay > 0.0:
            await asyncio.sleep(delay)
        handler = self._handlers.get(dst)
        if handler is None:  # unbound while the frame was in flight
            self.dropped += 1
            return
        self.delivered += 1
        await handler(frame)


class TcpTransport(Transport):
    """Real sockets: one localhost ``asyncio`` server per endpoint."""

    kind = "tcp"

    def __init__(
        self,
        oracle=None,
        latency_scale: float = 0.0,
        faults=None,
        encoding: str = "json",
        interface: str = "127.0.0.1",
        outbox_cap: int = 8192,
    ):
        super().__init__(oracle, latency_scale, faults, encoding)
        if outbox_cap is not None and outbox_cap < 1:
            raise ValueError("outbox_cap must be >= 1 (or None for unbounded)")
        self.interface = interface
        #: per-destination write-queue cap in frames: a peer whose
        #: flusher cannot keep up stops ballooning sender memory --
        #: overflow frames drop (send returns False) and count below
        self.outbox_cap = outbox_cap
        #: frames dropped because a destination's outbox was full
        self.backpressure_drops = 0
        self._servers: dict = {}
        #: address book: addr -> (interface, port)
        self.endpoints: dict = {}
        self._writers: dict = {}
        self._writer_locks: dict = {}
        self._readers: set = set()
        #: dst -> list of encoded frames awaiting the flusher; the key's
        #: presence doubles as "a flusher task owns this destination"
        self._outbox: dict = {}

    async def bind(self, addr, handler, host: int = None) -> None:
        if addr in self._servers:
            raise TransportError(f"address {addr!r} already bound")
        server = await asyncio.start_server(
            lambda reader, writer: self._serve(handler, reader, writer),
            self.interface,
            0,
        )
        port = server.sockets[0].getsockname()[1]
        self._servers[addr] = server
        self.endpoints[addr] = (self.interface, port)
        if host is not None:
            self.hosts[addr] = int(host)
        # a rebind hands the address a fresh port, so a cached writer
        # still points at the old (dying) endpoint and would black-hole
        # every frame until it noticed the close -- invalidate eagerly
        self._discard_writer(addr)

    async def unbind(self, addr) -> None:
        server = self._servers.pop(addr, None)
        self.endpoints.pop(addr, None)
        self.hosts.pop(addr, None)
        self._discard_writer(addr)
        if server is not None:
            server.close()
            await server.wait_closed()

    def _discard_writer(self, dst) -> None:
        """Drop (and actually close) the cached connection to ``dst``."""
        writer = self._writers.pop(dst, None)
        if writer is not None:
            writer.close()

    async def _serve(self, handler, reader, writer) -> None:
        """One accepted connection: reassemble frames, dispatch each."""
        decoder = FrameDecoder()
        self._readers.add(writer)
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                for frame in decoder.feed(chunk):
                    self.delivered += 1
                    await handler(frame)
        except (asyncio.CancelledError, ConnectionResetError):
            pass
        except ProtocolError:
            # a poisoned byte stream (bad magic, corrupt length, junk
            # payload) kills only this connection -- the endpoint stays
            # bound, and the peer's next connection gets a fresh decoder
            self.dropped += 1
        finally:
            self._readers.discard(writer)
            writer.close()

    async def _writer_for(self, dst) -> asyncio.StreamWriter:
        lock = self._writer_locks.setdefault(dst, asyncio.Lock())
        async with lock:
            writer = self._writers.get(dst)
            if writer is not None:
                if not writer.is_closing():
                    return writer
                # close the moribund connection for real instead of
                # letting the overwritten writer leak its socket
                self._writers.pop(dst, None)
                writer.close()
            endpoint = self.endpoints.get(dst)
            if endpoint is None:
                raise TransportError(f"no endpoint bound for {dst!r}")
            try:
                _, writer = await asyncio.open_connection(*endpoint)
            except OSError as exc:
                raise TransportError(f"connect to {dst!r} failed: {exc}") from exc
            self._writers[dst] = writer
            return writer

    async def send(self, src, dst, frame: Frame) -> bool:
        if self._closed:
            raise TransportError("transport is closed")
        self.sent += 1
        if self.drops(src, dst):
            self.dropped += 1
            return False
        if dst not in self.endpoints:
            self.dropped += 1
            return False
        data = encode_frame(frame, packed=self._packed)
        delay = self.delay_for(src, dst)
        if delay > 0.0:
            # shaped frames keep their individual departure times
            self._spawn(self._write(dst, data, delay))
            return True
        batch = self._outbox.get(dst)
        if batch is None:
            self._outbox[dst] = [data]
            self._spawn(self._flush(dst))
        elif self.outbox_cap is not None and len(batch) >= self.outbox_cap:
            # the flusher is behind by a full cap: refuse the frame
            # instead of queueing unbounded sender-side memory
            self.backpressure_drops += 1
            self.dropped += 1
            return False
        else:
            batch.append(data)
        return True

    async def _flush(self, dst) -> None:
        """Drain ``dst``'s outbox: one write + one drain per batch.

        Frames sent while a previous batch is draining coalesce into
        the next one, so backpressure from a slow peer throttles the
        sender at batch granularity instead of per frame.
        """
        while True:
            batch = self._outbox.get(dst)
            if not batch:
                self._outbox.pop(dst, None)
                return
            self._outbox[dst] = []
            try:
                writer = await self._writer_for(dst)
                writer.write(b"".join(batch))
                await writer.drain()
            except (TransportError, OSError):
                self.dropped += len(batch)

    async def _write(self, dst, data: bytes, delay: float) -> None:
        if delay > 0.0:
            await asyncio.sleep(delay)
        try:
            writer = await self._writer_for(dst)
            writer.write(data)
            await writer.drain()
        except (TransportError, OSError):
            self.dropped += 1

    async def close(self) -> None:
        await super().close()
        self._outbox.clear()
        for writer in list(self._writers.values()) + list(self._readers):
            writer.close()
        self._writers.clear()
        self._readers.clear()
        for server in self._servers.values():
            server.close()
        await asyncio.gather(
            *(server.wait_closed() for server in self._servers.values()),
            return_exceptions=True,
        )
        self._servers.clear()
        self.endpoints.clear()


def make_transport(kind: str, **kwargs) -> Transport:
    """Build a transport by name (``"loopback"`` or ``"tcp"``)."""
    if kind == "loopback":
        return LoopbackTransport(**kwargs)
    if kind == "tcp":
        return TcpTransport(**kwargs)
    raise ValueError(f"unknown transport {kind!r} (want 'loopback' or 'tcp')")
