"""Load driver for live clusters: open-loop Poisson or closed-loop pool.

Replays :mod:`repro.workloads.generator` traffic against a running
:class:`~repro.runtime.cluster.Cluster` in one of two modes:

* **open loop** (``concurrency=0``, the default): each request fires
  at its scheduled Poisson arrival time regardless of whether earlier
  requests finished -- the model that exposes queueing collapse,
  because offered load does not self-throttle;
* **closed loop** (``concurrency=N``): a pool of N workers keeps
  exactly N requests in flight, each worker issuing its next request
  the moment the previous one completes.  Offered load is whatever
  the system can absorb -- the mode that measures capacity instead of
  compliance with an arrival schedule.

The driver records per-request wall latency, success-only latency
percentiles (p50/p95/p99), a separate error-latency summary (timed
out or failed requests spend their timeout on the clock -- folding
them into the success percentiles would smear a latency cliff into
the p99), achieved throughput and error counts.  Deterministic facts
(operations, errors, per-op owners) go into the network's telemetry
counters; wall-clock durations are reported under ``wall``-prefixed
keys only, matching the bench layer's determinism contract (see
``benchmarks/_common``).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.reliability import CircuitOpenError
from repro.runtime.node import PeerBusy
from repro.workloads.generator import poisson_arrivals, uniform_points


def latency_percentiles(latencies_ms) -> dict:
    """p50/p95/p99 of a latency sample (ms); NaN when empty."""
    if len(latencies_ms) == 0:
        return {"p50": float("nan"), "p95": float("nan"), "p99": float("nan")}
    array = np.asarray(latencies_ms, dtype=np.float64)
    p50, p95, p99 = np.percentile(array, [50.0, 95.0, 99.0])
    return {"p50": float(p50), "p95": float(p95), "p99": float(p99)}


@dataclass
class LoadReport:
    """Outcome of one load run (open- or closed-loop)."""

    ops: int
    errors: int
    #: wall latency of each *successful* request, ms, completion order
    latencies_ms: list = field(default_factory=list)
    #: wall latency of each errored/timed-out request, ms
    error_latencies_ms: list = field(default_factory=list)
    #: offered arrival rate (requests/second; 0 in closed-loop mode)
    offered_rate: float = 0.0
    #: "open" (Poisson schedule) or "closed" (worker pool)
    mode: str = "open"
    #: in-flight request budget of the closed-loop pool (0 when open)
    concurrency: int = 0
    #: wall seconds from first arrival to last completion
    wall_duration_s: float = 0.0
    #: request attempts resent under the cluster's retry policy
    retries: int = 0
    #: wall milliseconds slept in retry backoff across the run
    backoff_ms: float = 0.0
    #: requests that ultimately failed with a BUSY shed (subset of
    #: ``errors``; BUSY retries that then succeeded are not errors)
    busy_errors: int = 0
    #: requests refused locally by an open circuit breaker
    breaker_fastfails: int = 0
    #: server-side data-lane sheds observed during this run
    shed: int = 0
    #: event-loop flavor that drove the run ("asyncio" or "uvloop");
    #: sharded runs report the workers' loop
    loop: str = ""

    @property
    def succeeded(self) -> int:
        return self.ops - self.errors

    @property
    def achieved_rate(self) -> float:
        """Completed requests per wall second."""
        if self.wall_duration_s <= 0.0:
            return 0.0
        return self.succeeded / self.wall_duration_s

    def percentiles(self) -> dict:
        """Success-only latency percentiles (errors summarized apart)."""
        return latency_percentiles(self.latencies_ms)

    def error_percentiles(self) -> dict:
        """Percentiles of the errored requests' wall latencies."""
        return latency_percentiles(self.error_latencies_ms)

    def summary(self) -> dict:
        """Flat report; wall-derived numbers under ``wall*`` keys only."""
        pct = self.percentiles()
        err = self.error_percentiles()
        return {
            "ops": self.ops,
            "errors": self.errors,
            "mode": self.mode,
            "concurrency": self.concurrency,
            "offered_rate": self.offered_rate,
            "wall_duration_s": self.wall_duration_s,
            "wall_throughput_ops": self.achieved_rate,
            "wall_p50_ms": pct["p50"],
            "wall_p95_ms": pct["p95"],
            "wall_p99_ms": pct["p99"],
            # errored requests report their own latency spectrum -- a
            # timeout cliff must not masquerade as a success percentile
            "wall_error_p50_ms": err["p50"],
            "wall_error_p99_ms": err["p99"],
            # retry counts depend on wall-clock races (which attempts
            # time out), so they live under the wall contract too
            "wall_retries": self.retries,
            "wall_backoff_ms": self.backoff_ms,
            # overload reactions are wall-race-dependent as well: which
            # requests get shed depends on queue depths at arrival time
            "wall_busy_errors": self.busy_errors,
            "wall_breaker_fastfails": self.breaker_fastfails,
            "wall_shed": self.shed,
            "loop": self.loop,
        }


def _build_requests(cluster, op: str, count: int, rng, sources=None) -> list:
    """Draw the request list; ``sources`` restricts *originators* only.

    A shard worker passes its owned node ids as ``sources`` so every
    request starts on a local actor, while lookup keys and route
    destinations stay cluster-wide (cross-shard traffic is whatever
    the tessellation dictates).  With ``sources=None`` the draw
    sequence is bit-identical to what it has always been, keeping
    existing seeded workloads replayable.
    """
    ids = np.array(cluster.node_ids)
    pool = ids if sources is None else np.array(sorted(sources))
    dims = cluster.overlay.ecan.dims
    if op == "lookup":
        origins = rng.choice(pool, size=count)
        points = uniform_points(count, dims, rng)
        return [
            (int(origins[i]), tuple(float(x) for x in points[i]))
            for i in range(count)
        ]
    if op == "route":
        if sources is None:
            return [
                tuple(int(x) for x in rng.choice(ids, size=2, replace=False))
                for _ in range(count)
            ]
        pairs = []
        for _ in range(count):
            src = int(rng.choice(pool))
            dst = int(rng.choice(ids))
            while dst == src:
                dst = int(rng.choice(ids))
            pairs.append((src, dst))
        return pairs
    raise ValueError(f"unknown op {op!r} (want 'lookup' or 'route')")


async def run_load(
    cluster,
    rate: float,
    count: int,
    seed: int = 0,
    op: str = "lookup",
    concurrency: int = 0,
    sources=None,
) -> LoadReport:
    """Drive ``count`` requests against ``cluster``.

    ``op`` selects the request mix: ``"lookup"`` routes uniform keys
    from random members to their owners; ``"route"`` routes between
    random member pairs.  The workload is a pure function of ``seed``,
    so the same run can be replayed on the synchronous simulator for
    parity checks.

    With ``concurrency=0`` requests fire open-loop at Poisson arrival
    times drawn for ``rate``/s.  With ``concurrency=N > 0`` a pool of
    N workers holds N requests in flight (closed loop); ``rate`` is
    ignored for scheduling and the report's ``offered_rate`` is 0.
    """
    rng = np.random.default_rng(seed)
    closed = concurrency > 0
    arrivals = None if closed else poisson_arrivals(rate, count, rng)
    requests = _build_requests(cluster, op, count, rng, sources=sources)

    loop = asyncio.get_running_loop()
    report = LoadReport(
        ops=count,
        errors=0,
        offered_rate=0.0 if closed else float(rate),
        mode="closed" if closed else "open",
        concurrency=int(concurrency) if closed else 0,
    )
    # the shared policy instance carries cluster-wide accounting;
    # snapshot so the report charges only this run's resends
    policy = getattr(cluster.config, "retry", None)
    retries_before = 0 if policy is None else policy.retries
    backoff_before = 0.0 if policy is None else policy.backoff_slept_ms
    telemetry = cluster.network.telemetry
    shed_before = telemetry.event_counts.get("runtime_shed", 0)

    async def issue(index: int) -> None:
        began = time.perf_counter()
        try:
            if op == "lookup":
                source, point = requests[index]
                await cluster.lookup(source, point)
            else:
                source, dest = requests[index]
                await cluster.route(source, dest)
        except CircuitOpenError:
            # the overload reaction working as designed: refused
            # locally, near-zero latency, no load on the hot peer
            report.errors += 1
            report.breaker_fastfails += 1
            report.error_latencies_ms.append(
                (time.perf_counter() - began) * 1000.0
            )
        except PeerBusy:
            # shed server-side and still BUSY after the retry budget
            report.errors += 1
            report.busy_errors += 1
            report.error_latencies_ms.append(
                (time.perf_counter() - began) * 1000.0
            )
        except Exception:
            report.errors += 1
            report.error_latencies_ms.append(
                (time.perf_counter() - began) * 1000.0
            )
        else:
            report.latencies_ms.append((time.perf_counter() - began) * 1000.0)

    start_time = loop.time()

    async def worker(indices) -> None:
        for index in indices:  # shared iterator: each worker pulls the next
            await issue(index)

    wall_began = time.perf_counter()
    if closed:
        indices = iter(range(count))
        await asyncio.gather(
            *(worker(indices) for _ in range(min(concurrency, count)))
        )
    else:
        # open loop as a single pacer: spawn each request's task at its
        # arrival time instead of pre-spawning `count` sleeping tasks
        # up front -- at several times capacity that pre-spawn is tens
        # of thousands of timers before the first request even fires
        pending = []
        for index in range(count):
            delay = start_time + float(arrivals[index]) - loop.time()
            if delay > 0.0:
                await asyncio.sleep(delay)
            pending.append(loop.create_task(issue(index)))
        await asyncio.gather(*pending)
    report.wall_duration_s = time.perf_counter() - wall_began
    if policy is not None:
        report.retries = int(policy.retries - retries_before)
        report.backoff_ms = float(policy.backoff_slept_ms - backoff_before)
    report.shed = int(telemetry.event_counts.get("runtime_shed", 0) - shed_before)
    report.loop = type(loop).__module__.split(".")[0]

    telemetry.count("loadgen_ops", report.ops)
    telemetry.count("loadgen_errors", report.errors)
    if report.retries:
        telemetry.count("loadgen_retries", report.retries)
    pct = report.percentiles()
    if np.isfinite(pct["p99"]):
        telemetry.gauge("loadgen_wall_p99_ms", pct["p99"])
    return report
