"""The versioned, length-prefixed binary wire protocol.

Every message on the wire is one *frame*::

    0      2      3      4              12         16
    +------+------+------+--------------+----------+----------------+
    | 'RW' | ver  | type |  request_id  | pay_len  |    payload     |
    +------+------+------+--------------+----------+----------------+
      2 B    1 B    1 B       8 B (BE)     4 B (BE)    pay_len B

A fixed :data:`MAGIC` guards against cross-protocol traffic, the
version byte rejects frames from a newer writer, and
:data:`MAX_PAYLOAD` caps a frame so a corrupt (or hostile) length
field can never make a reader buffer gigabytes.

The payload travels in one of two encodings, discriminated by the
:data:`PACKED_FLAG` bit of the type byte:

* **JSON** (flag clear) -- compact UTF-8 JSON, small, debuggable and
  structure-flexible.  Every frame kind can travel as JSON; control
  frames (JOIN, PUBLISH, HEARTBEAT, ERROR) always do.
* **packed** (flag set, wire version >= 2) -- the hot frame kinds of
  the data path (ROUTE, LOOKUP and the ACKs answering them) carry
  points, paths and integer ids, so their payloads pack into fixed
  struct layouts through the same :mod:`struct` machinery as the
  header: no JSON stringification per hop.  Packing is best-effort at
  encode time -- a payload outside the packed schema (extra keys,
  out-of-range ids, non-float coordinates) silently falls back to
  JSON -- and lossless: ``decode(encode(p, packed=True)) == p``.

Version 1 readers never see packed frames they cannot parse (the flag
bit doubles as an unknown-type byte there), and version 2 readers
accept v1 JSON frames unchanged, so the bump is compatible.

Version 3 adds one frame kind: **BUSY**, an overload-shed
notification correlated to the request it sheds (see
:mod:`repro.runtime.node` -- a full data-lane mailbox drops a frame
and answers BUSY so the requester backs off instead of waiting out a
timeout).  BUSY always rides as JSON.  The header layout, the packed
schemas and every v1/v2 frame are unchanged, so v3 readers decode
v2 (and v1) traffic byte-for-byte; a v2 reader that receives a BUSY
frame rejects only that frame's type byte, exactly as it rejects any
other unknown kind.

Decoding is strict: bad magic, unknown version or message type, an
oversized length, malformed JSON, a malformed packed layout, or a
truncated buffer all raise :class:`ProtocolError` -- never a hang,
never a partial frame.  :class:`FrameDecoder` is the incremental
flavour for byte streams (TCP): feed it arbitrary chunks, it yields
complete frames and keeps the tail buffered.  It parses in place with
offset-based ``unpack_from`` reads, copying only each frame's payload
slice, so a large coalesced chunk costs O(bytes), not O(bytes^2).
"""

from __future__ import annotations

import enum
import json
import struct
from dataclasses import dataclass, field
from functools import lru_cache

#: protocol magic, first on the wire
MAGIC = b"RW"

#: wire format version (bump on any incompatible header/payload change)
WIRE_VERSION = 3

#: oldest version this build still decodes (v1 frames are plain JSON)
MIN_WIRE_VERSION = 1

#: type-byte bit marking a struct-packed (non-JSON) payload
PACKED_FLAG = 0x80

#: hard cap on one frame's payload (bytes)
MAX_PAYLOAD = 1 << 20

#: magic(2s) version(B) type(B) request_id(Q) payload_len(I)
HEADER = struct.Struct("!2sBBQI")


@lru_cache(maxsize=512)
def _layout(fmt: str) -> struct.Struct:
    """Compiled :class:`struct.Struct` for a variadic payload layout.

    The packed codecs build their format strings from runtime lengths
    (``f"!{npoint}d"`` and friends), so ``struct.pack``/``unpack_from``
    would re-compile the format on every frame -- measurably the
    hottest slice of the per-hop codec cost.  Real traffic draws from
    a tiny set of lengths (point dims, path depths up to ``max_hops``,
    record counts), so a bounded LRU turns the compile into a dict
    hit; pathological length churn merely evicts, never grows.
    """
    return struct.Struct(fmt)


# fixed-layout segments, compiled once at import
_ROUTE_FIX = struct.Struct("!BBIB")
_FUSED_FIX = struct.Struct("!IBB")
_LOOKUP_FIX = struct.Struct("!IBB")
_MAP_FIX = struct.Struct("!BIH")
_ACK_FIX = struct.Struct("!IHH")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_U8 = struct.Struct("!B")


class ProtocolError(Exception):
    """A frame violated the wire protocol (malformed, unknown, oversized)."""


class MsgType(enum.IntEnum):
    """Frame types of the overlay wire protocol."""

    JOIN = 1
    ROUTE = 2
    PUBLISH = 3
    LOOKUP = 4
    HEARTBEAT = 5
    ACK = 6
    ERROR = 7
    #: overload shed notification (wire v3): the peer dropped the
    #: correlated request from a full data lane instead of serving it
    BUSY = 8


#: type-byte -> MsgType, resolved without an enum-constructor call
_MSG_BY_BYTE = {int(member): member for member in MsgType}


@dataclass(slots=True)
class Frame:
    """One decoded wire frame.

    A plain slots value object, created once or more per hop on the
    data path -- a frozen dataclass would route every ``__init__``
    field store through ``object.__setattr__`` and roughly double the
    construction cost for nothing (the payload dict it carries was
    always mutable anyway).
    """

    kind: MsgType
    request_id: int
    payload: dict = field(default_factory=dict)

    def reply(self, payload: dict, kind: "MsgType" = None) -> "Frame":
        """An ACK (or ``kind``) frame correlated to this request."""
        return Frame(
            kind=MsgType.ACK if kind is None else kind,
            request_id=self.request_id,
            payload=payload,
        )


# -- packed payload codecs ---------------------------------------------------
#
# Each packed payload starts with a one-byte schema tag; the rest is a
# fixed struct layout for that tag.  Integer ids ride as u32, zone/map
# cell coordinates as i32, coordinates as f64 -- all exactly the value
# domain the runtime produces, guarded at pack time so anything else
# falls back to JSON.

_TAG_ROUTE = 1        # {point, path, op, src} (+ optional map-read triple)
_TAG_LOOKUP = 2       # {querier, level, cell, src}
_TAG_ACK_ROUTE = 3    # {owner, path, hops}
_TAG_ACK_FUSED = 4    # {owner, path, hops, served_by, widened, records}
_TAG_ACK_MAP = 5      # {served_by, widened, records}

_OP_CODES = {"route": 0, "lookup": 1}
_OP_NAMES = {code: name for name, code in _OP_CODES.items()}

#: exact key sets of the packable payload shapes (anything else -> JSON)
_ROUTE_KEYS = frozenset({"point", "path", "op", "src"})
_ROUTE_FUSED_KEYS = frozenset(
    {"point", "path", "op", "src", "querier", "level", "cell"}
)
_LOOKUP_KEYS = frozenset({"querier", "level", "cell", "src"})
_ACK_ROUTE_KEYS = frozenset({"owner", "path", "hops"})
_ACK_FUSED_KEYS = frozenset(
    {"owner", "path", "hops", "served_by", "widened", "records"}
)
_ACK_MAP_KEYS = frozenset({"served_by", "widened", "records"})

# Integer fields lean on struct's own C-level range checks (a value
# outside u32/i32, a non-int, or an overlong list raises struct.error
# and the encoder falls back to JSON); only floats need a Python-side
# type gate, because struct would silently coerce ints to doubles and
# break decode(encode(p)) == p.


def _pack_route(payload: dict):
    keys = payload.keys()
    if keys == _ROUTE_KEYS:
        fused = 0
    elif keys == _ROUTE_FUSED_KEYS:
        fused = 1
    else:
        return None
    opcode = _OP_CODES.get(payload["op"])
    if opcode is None:
        return None
    point = payload["point"]
    path = payload["path"]
    for x in point:
        if type(x) is not float:
            return None
    if fused:
        cell = payload["cell"]
        return _layout(
            f"!BBBIB{len(point)}dH{len(path)}IIBB{len(cell)}i"
        ).pack(
            _TAG_ROUTE,
            opcode,
            1,
            payload["src"],
            len(point),
            *point,
            len(path),
            *path,
            payload["querier"],
            payload["level"],
            len(cell),
            *cell,
        )
    return _layout(f"!BBBIB{len(point)}dH{len(path)}I").pack(
        _TAG_ROUTE,
        opcode,
        0,
        payload["src"],
        len(point),
        *point,
        len(path),
        *path,
    )


def _unpack_route(data, offset: int) -> tuple:
    opcode, fused, src, npoint = _ROUTE_FIX.unpack_from(data, offset)
    offset += 7
    op = _OP_NAMES.get(opcode)
    if op is None or fused not in (0, 1):
        raise ProtocolError(f"packed ROUTE with bad op/fused ({opcode}/{fused})")
    point = list(_layout(f"!{npoint}d").unpack_from(data, offset))
    offset += 8 * npoint
    (npath,) = _U16.unpack_from(data, offset)
    offset += 2
    path = list(_layout(f"!{npath}I").unpack_from(data, offset))
    offset += 4 * npath
    payload = {"point": point, "path": path, "op": op, "src": src}
    if fused:
        querier, level, ncell = _FUSED_FIX.unpack_from(data, offset)
        offset += 6
        payload["querier"] = querier
        payload["level"] = level
        payload["cell"] = list(_layout(f"!{ncell}i").unpack_from(data, offset))
        offset += 4 * ncell
    return payload, offset


def _pack_lookup(payload: dict):
    if payload.keys() != _LOOKUP_KEYS:
        return None
    cell = payload["cell"]
    return _layout(f"!BIBB{len(cell)}iI").pack(
        _TAG_LOOKUP,
        payload["querier"],
        payload["level"],
        len(cell),
        *cell,
        payload["src"],
    )


def _unpack_lookup(data, offset: int) -> tuple:
    querier, level, ncell = _LOOKUP_FIX.unpack_from(data, offset)
    offset += 6
    cell = list(_layout(f"!{ncell}i").unpack_from(data, offset))
    offset += 4 * ncell
    (src,) = _U32.unpack_from(data, offset)
    offset += 4
    return {"querier": querier, "level": level, "cell": cell, "src": src}, offset


def _pack_map_read(served_by, widened, records):
    """The map-read result triple, shared by fused and plain lookup ACKs."""
    if type(widened) is not bool:
        return None
    flags = (0 if served_by is None else 1) | (2 if widened else 0)
    return _layout(f"!BIH{len(records)}I").pack(
        flags,
        0 if served_by is None else served_by,
        len(records),
        *records,
    )


def _unpack_map_read(data, offset: int) -> tuple:
    flags, served_by, nrecords = _MAP_FIX.unpack_from(data, offset)
    offset += 7
    records = list(_layout(f"!{nrecords}I").unpack_from(data, offset))
    offset += 4 * nrecords
    triple = {
        "served_by": served_by if flags & 1 else None,
        "widened": bool(flags & 2),
        "records": records,
    }
    return triple, offset


def _pack_ack(payload: dict):
    keys = payload.keys()
    if keys == _ACK_MAP_KEYS:
        body = _pack_map_read(
            payload["served_by"], payload["widened"], payload["records"]
        )
        if body is None:
            return None
        return _U8.pack(_TAG_ACK_MAP) + body
    fused = keys == _ACK_FUSED_KEYS
    if not fused and keys != _ACK_ROUTE_KEYS:
        return None
    path = payload["path"]
    head = _layout(f"!BIHH{len(path)}I").pack(
        _TAG_ACK_FUSED if fused else _TAG_ACK_ROUTE,
        payload["owner"],
        payload["hops"],
        len(path),
        *path,
    )
    if not fused:
        return head
    body = _pack_map_read(
        payload["served_by"], payload["widened"], payload["records"]
    )
    if body is None:
        return None
    return head + body


def _unpack_ack(tag: int, data, offset: int) -> tuple:
    if tag == _TAG_ACK_MAP:
        return _unpack_map_read(data, offset)
    owner, hops, npath = _ACK_FIX.unpack_from(data, offset)
    offset += 8
    path = list(_layout(f"!{npath}I").unpack_from(data, offset))
    offset += 4 * npath
    payload = {"owner": owner, "path": path, "hops": hops}
    if tag == _TAG_ACK_FUSED:
        triple, offset = _unpack_map_read(data, offset)
        payload.update(triple)
    return payload, offset


_PACKERS = {
    MsgType.ROUTE: _pack_route,
    MsgType.LOOKUP: _pack_lookup,
    MsgType.ACK: _pack_ack,
}

_ROUTE_TAGS = frozenset({_TAG_ROUTE})
_LOOKUP_TAGS = frozenset({_TAG_LOOKUP})
_ACK_TAGS = frozenset({_TAG_ACK_ROUTE, _TAG_ACK_FUSED, _TAG_ACK_MAP})

_TAGS_FOR = {
    MsgType.ROUTE: _ROUTE_TAGS,
    MsgType.LOOKUP: _LOOKUP_TAGS,
    MsgType.ACK: _ACK_TAGS,
}


def pack_payload(kind: MsgType, payload: dict):
    """Struct-pack ``payload`` for a hot-path ``kind``.

    Returns the packed bytes, or ``None`` when the payload does not
    fit the kind's packed schema (the caller falls back to JSON).
    """
    packer = _PACKERS.get(kind)
    if packer is None:
        return None
    try:
        return packer(payload)
    except (struct.error, TypeError):
        # out-of-range or mistyped value: the schema doesn't fit, JSON does
        return None


def unpack_payload(kind: MsgType, data) -> dict:
    """Decode a packed payload; strict -- raises :class:`ProtocolError`."""
    try:
        (tag,) = _U8.unpack_from(data, 0)
        if tag not in _TAGS_FOR.get(kind, ()):
            raise ProtocolError(
                f"packed payload tag {tag} does not belong to {kind.name}"
            )
        if tag == _TAG_ROUTE:
            payload, end = _unpack_route(data, 1)
        elif tag == _TAG_LOOKUP:
            payload, end = _unpack_lookup(data, 1)
        else:
            payload, end = _unpack_ack(tag, data, 1)
    except struct.error as exc:
        raise ProtocolError(f"truncated packed payload: {exc}") from None
    if end != len(data):
        raise ProtocolError(
            f"{len(data) - end} trailing bytes after packed payload"
        )
    return payload


# -- frame codec -------------------------------------------------------------


def encode_frame(frame: Frame, packed: bool = False) -> bytes:
    """Serialize ``frame`` to its wire bytes.

    With ``packed=True`` the hot frame kinds (ROUTE, LOOKUP, ACK) use
    the struct fast path when the payload fits its schema; everything
    else -- and any payload outside the schema -- rides as JSON.  Both
    encodings decode to the identical payload dict.
    """
    payload = None
    type_byte = int(frame.kind)
    if packed:
        payload = pack_payload(frame.kind, frame.payload)
        if payload is not None:
            type_byte |= PACKED_FLAG
    if payload is None:
        payload = json.dumps(
            frame.payload, separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(
            f"payload of {len(payload)} bytes exceeds MAX_PAYLOAD ({MAX_PAYLOAD})"
        )
    header = HEADER.pack(
        MAGIC, WIRE_VERSION, type_byte, int(frame.request_id), len(payload)
    )
    return header + payload


def _parse_header(buffer, offset: int = 0) -> tuple:
    """Validate one frame header at ``offset``.

    Returns ``(kind, packed, request_id, length)``.
    """
    magic, version, type_byte, request_id, length = HEADER.unpack_from(
        buffer, offset
    )
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r} (want {MAGIC!r})")
    if not MIN_WIRE_VERSION <= version <= WIRE_VERSION:
        raise ProtocolError(
            f"unsupported wire version {version} (this build speaks {WIRE_VERSION})"
        )
    packed = type_byte & PACKED_FLAG
    kind = _MSG_BY_BYTE.get(type_byte & ~PACKED_FLAG)
    if kind is None or (packed and version < 2):
        # v1 had no packed flag, so a flagged v1 byte is just unknown
        raise ProtocolError(f"unknown message type {type_byte}")
    if length > MAX_PAYLOAD:
        raise ProtocolError(
            f"declared payload of {length} bytes exceeds MAX_PAYLOAD ({MAX_PAYLOAD})"
        )
    return kind, packed, request_id, length


def _parse_payload(kind: MsgType, packed: bool, data) -> dict:
    if packed:
        return unpack_payload(kind, data)
    try:
        payload = json.loads(bytes(data).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame payload: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def decode_frame(buffer: bytes) -> Frame:
    """Decode exactly one frame from ``buffer`` (no trailing bytes)."""
    if len(buffer) < HEADER.size:
        raise ProtocolError(
            f"truncated frame: {len(buffer)} bytes, header needs {HEADER.size}"
        )
    kind, packed, request_id, length = _parse_header(buffer)
    end = HEADER.size + length
    if len(buffer) < end:
        raise ProtocolError(
            f"truncated frame: payload declares {length} bytes, "
            f"{len(buffer) - HEADER.size} present"
        )
    if len(buffer) > end:
        raise ProtocolError(f"{len(buffer) - end} trailing bytes after frame")
    return Frame(kind, request_id, _parse_payload(kind, packed, buffer[HEADER.size:end]))


def roundtrip_payload(kind: MsgType, payload: dict, packed: bool = False) -> dict:
    """``payload`` exactly as the receiving side would decode it.

    The in-process loopback transport uses this to model the wire's
    type fidelity (tuples become lists, keys become strings, packed
    schemas coerce their fields) without paying for the 16-byte frame
    header it would immediately re-parse.  Matches
    ``decode_frame(encode_frame(frame, packed)).payload`` for every
    payload, by construction: the same pack/unpack (or JSON) pair
    runs, only the header round trip is skipped.
    """
    if packed:
        data = pack_payload(kind, payload)
        if data is not None:
            return unpack_payload(kind, data)
    return json.loads(
        json.dumps(payload, separators=(",", ":"), sort_keys=True)
    )


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary byte stream.

    ``feed(chunk)`` returns every frame completed by the chunk; bytes
    of a not-yet-complete frame stay buffered for the next feed.  A
    malformed header or payload raises :class:`ProtocolError`
    immediately -- the stream is unrecoverable past that point, so the
    decoder refuses further input.

    Parsing walks the buffer by offset (``unpack_from`` on the
    bytearray, one payload-sized copy per frame) and compacts the
    buffer once per feed, so N coalesced frames cost O(total bytes) --
    not the O(bytes^2) a per-frame full-buffer copy would.
    """

    def __init__(self):
        self._buffer = bytearray()
        self._poisoned = False

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards the next (incomplete) frame."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> list:
        if self._poisoned:
            raise ProtocolError("decoder poisoned by an earlier protocol error")
        buffer = self._buffer
        buffer.extend(chunk)
        frames = []
        offset = 0
        header_size = HEADER.size
        try:
            while len(buffer) - offset >= header_size:
                kind, packed, request_id, length = _parse_header(buffer, offset)
                start = offset + header_size
                if len(buffer) - start < length:
                    break
                payload = _parse_payload(
                    kind, packed, bytes(buffer[start:start + length])
                )
                offset = start + length
                frames.append(Frame(kind, request_id, payload))
        except ProtocolError:
            self._poisoned = True
            raise
        finally:
            if offset:
                del buffer[:offset]
        return frames
