"""The versioned, length-prefixed binary wire protocol.

Every message on the wire is one *frame*::

    0      2      3      4              12         16
    +------+------+------+--------------+----------+----------------+
    | 'RW' | ver  | type |  request_id  | pay_len  | payload (JSON) |
    +------+------+------+--------------+----------+----------------+
      2 B    1 B    1 B       8 B (BE)     4 B (BE)    pay_len B

A fixed :data:`MAGIC` guards against cross-protocol traffic, the
version byte rejects frames from a newer writer, and the payload is
compact UTF-8 JSON -- small, debuggable, and structure-flexible while
the struct header keeps framing allocation-free.  :data:`MAX_PAYLOAD`
caps a frame so a corrupt (or hostile) length field can never make a
reader buffer gigabytes.

Decoding is strict: bad magic, unknown version or message type, an
oversized length, malformed JSON, or a truncated buffer all raise
:class:`ProtocolError` -- never a hang, never a partial frame.
:class:`FrameDecoder` is the incremental flavour for byte streams
(TCP): feed it arbitrary chunks, it yields complete frames and keeps
the tail buffered.
"""

from __future__ import annotations

import enum
import json
import struct
from dataclasses import dataclass, field

#: protocol magic, first on the wire
MAGIC = b"RW"

#: wire format version (bump on any incompatible header/payload change)
WIRE_VERSION = 1

#: hard cap on one frame's payload (bytes)
MAX_PAYLOAD = 1 << 20

#: magic(2s) version(B) type(B) request_id(Q) payload_len(I)
HEADER = struct.Struct("!2sBBQI")


class ProtocolError(Exception):
    """A frame violated the wire protocol (malformed, unknown, oversized)."""


class MsgType(enum.IntEnum):
    """Frame types of the overlay wire protocol."""

    JOIN = 1
    ROUTE = 2
    PUBLISH = 3
    LOOKUP = 4
    HEARTBEAT = 5
    ACK = 6
    ERROR = 7


@dataclass(frozen=True)
class Frame:
    """One decoded wire frame."""

    kind: MsgType
    request_id: int
    payload: dict = field(default_factory=dict)

    def reply(self, payload: dict, kind: "MsgType" = None) -> "Frame":
        """An ACK (or ``kind``) frame correlated to this request."""
        return Frame(
            kind=MsgType.ACK if kind is None else kind,
            request_id=self.request_id,
            payload=payload,
        )


def encode_frame(frame: Frame) -> bytes:
    """Serialize ``frame`` to its wire bytes."""
    payload = json.dumps(
        frame.payload, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(
            f"payload of {len(payload)} bytes exceeds MAX_PAYLOAD ({MAX_PAYLOAD})"
        )
    header = HEADER.pack(
        MAGIC, WIRE_VERSION, int(frame.kind), int(frame.request_id), len(payload)
    )
    return header + payload


def _parse_header(buffer: bytes) -> tuple:
    """Validate one frame header; returns ``(kind, request_id, length)``."""
    magic, version, kind, request_id, length = HEADER.unpack_from(buffer)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r} (want {MAGIC!r})")
    if version != WIRE_VERSION:
        raise ProtocolError(
            f"unsupported wire version {version} (this build speaks {WIRE_VERSION})"
        )
    try:
        kind = MsgType(kind)
    except ValueError:
        raise ProtocolError(f"unknown message type {kind}") from None
    if length > MAX_PAYLOAD:
        raise ProtocolError(
            f"declared payload of {length} bytes exceeds MAX_PAYLOAD ({MAX_PAYLOAD})"
        )
    return kind, request_id, length


def _parse_payload(data: bytes) -> dict:
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame payload: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def decode_frame(buffer: bytes) -> Frame:
    """Decode exactly one frame from ``buffer`` (no trailing bytes)."""
    if len(buffer) < HEADER.size:
        raise ProtocolError(
            f"truncated frame: {len(buffer)} bytes, header needs {HEADER.size}"
        )
    kind, request_id, length = _parse_header(buffer)
    end = HEADER.size + length
    if len(buffer) < end:
        raise ProtocolError(
            f"truncated frame: payload declares {length} bytes, "
            f"{len(buffer) - HEADER.size} present"
        )
    if len(buffer) > end:
        raise ProtocolError(f"{len(buffer) - end} trailing bytes after frame")
    return Frame(kind, request_id, _parse_payload(buffer[HEADER.size:end]))


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary byte stream.

    ``feed(chunk)`` returns every frame completed by the chunk; bytes
    of a not-yet-complete frame stay buffered for the next feed.  A
    malformed header or payload raises :class:`ProtocolError`
    immediately -- the stream is unrecoverable past that point, so the
    decoder refuses further input.
    """

    def __init__(self):
        self._buffer = bytearray()
        self._poisoned = False

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards the next (incomplete) frame."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> list:
        if self._poisoned:
            raise ProtocolError("decoder poisoned by an earlier protocol error")
        self._buffer.extend(chunk)
        frames = []
        try:
            while len(self._buffer) >= HEADER.size:
                kind, request_id, length = _parse_header(bytes(self._buffer))
                end = HEADER.size + length
                if len(self._buffer) < end:
                    break
                payload = _parse_payload(bytes(self._buffer[HEADER.size:end]))
                del self._buffer[:end]
                frames.append(Frame(kind, request_id, payload))
        except ProtocolError:
            self._poisoned = True
            raise
        return frames
