"""Live asyncio execution layer.

Everything below :mod:`repro.core` runs under a single-threaded
simulated clock; this package runs the same overlay stack *live*:
each member is an independent async actor behind a mailbox
(:class:`~repro.runtime.node.NodeProcess`), actors exchange a
versioned, length-prefixed binary wire protocol
(:mod:`repro.runtime.wire`) over a pluggable transport
(:mod:`repro.runtime.transport` -- in-process loopback or real TCP),
and a :class:`~repro.runtime.cluster.Cluster` harness boots N nodes,
performs topology-aware joins over the wire and serves async
``route`` / ``publish`` / ``lookup`` RPCs.  The open-loop load driver
(:mod:`repro.runtime.loadgen`) replays generated workloads at a
configured arrival rate and reports latency percentiles.

Live runs are cross-validated against the synchronous simulator: the
same (config, seed) must produce identical lookup owners and route
endpoints (:meth:`Cluster.verify_against_sim`).

Self-healing runs live too: :class:`~repro.runtime.recovery.RuntimeRecovery`
drives a SWIM-style failure detector over HEARTBEAT frames (direct
probes, witness relays, partition shielding) and reuses the
simulator's :class:`~repro.core.recovery.RecoveryManager` for zone
takeover and replica re-hosting when a death is confirmed.

The runtime scales past one core by sharding (DESIGN.md §13): a
:class:`~repro.runtime.shard.ShardedCluster` partitions the
membership across worker processes grouped by transit domain, each
worker running its own event loop over a deterministic
:class:`~repro.runtime.cluster.RoutingView` replica, with cross-shard
frames riding per-shard TCP peering sockets and the identical
sim-parity bar enforced end to end.

The runtime degrades gracefully under overload (DESIGN.md §12): each
actor's mailbox is two lanes -- control traffic is never shed, data
traffic is capped and sheds with a BUSY wire frame -- and clients
react with jittered BUSY retries, per-peer circuit breakers and
Jacobson-style adaptive timeouts (:exc:`~repro.runtime.node.PeerBusy`,
:class:`~repro.core.reliability.CircuitBreaker`,
:class:`~repro.core.reliability.AdaptiveTimeout`).
"""

from repro.core.reliability import CircuitOpenError
from repro.runtime.cluster import (
    Cluster,
    ClusterConfig,
    RoutingView,
    make_cluster,
    verify_cluster_against_sim,
)
from repro.runtime.loadgen import LoadReport, latency_percentiles, run_load
from repro.runtime.node import NodeProcess, PeerBusy, RemoteError, RequestTimeout
from repro.runtime.recovery import RuntimeRecovery
from repro.runtime.shard import (
    NotSupportedError,
    PeeringTransport,
    ShardCrashed,
    ShardedCluster,
    ShardError,
    shard_assignment,
)
from repro.runtime.transport import (
    LoopbackTransport,
    TcpTransport,
    Transport,
    TransportError,
    make_transport,
)
from repro.runtime.wire import (
    Frame,
    FrameDecoder,
    MsgType,
    ProtocolError,
    decode_frame,
    encode_frame,
)

__all__ = [
    "CircuitOpenError",
    "Cluster",
    "ClusterConfig",
    "Frame",
    "FrameDecoder",
    "LoadReport",
    "LoopbackTransport",
    "MsgType",
    "NodeProcess",
    "NotSupportedError",
    "PeerBusy",
    "PeeringTransport",
    "ProtocolError",
    "RemoteError",
    "RequestTimeout",
    "RoutingView",
    "RuntimeRecovery",
    "ShardCrashed",
    "ShardError",
    "ShardedCluster",
    "TcpTransport",
    "Transport",
    "TransportError",
    "decode_frame",
    "encode_frame",
    "latency_percentiles",
    "make_cluster",
    "make_transport",
    "run_load",
    "shard_assignment",
    "verify_cluster_against_sim",
]
