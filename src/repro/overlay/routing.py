"""Route results and path metrics."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RouteResult:
    """Outcome of routing a message through an overlay.

    Attributes
    ----------
    path:
        Sequence of overlay node ids visited, starting at the source.
    owner:
        Node id owning the destination point (None on failure).
    success:
        False if routing hit the hop budget or a dead end.
    expressway_hops / can_hops:
        For eCAN routes, the breakdown between high-order (expressway)
        jumps and default CAN hops; both zero for plain CAN routes.
    repairs:
        Number of routing-table entries repaired on the fly.
    retries:
        Extra delivery attempts beyond the first, per hop, summed over
        the route (nonzero only with faults armed and a retry policy).
    degraded:
        Expressway entries abandoned mid-route after failed delivery
        attempts (the route fell back to greedy CAN neighbors).
    """

    path: list = field(default_factory=list)
    owner: int = None
    success: bool = True
    expressway_hops: int = 0
    can_hops: int = 0
    repairs: int = 0
    retries: int = 0
    degraded: int = 0

    @property
    def hops(self) -> int:
        """Number of overlay forwarding hops."""
        return len(self.path) - 1

    def host_path(self, overlay) -> list:
        """Physical hosts along the route (for latency accumulation)."""
        return [overlay.nodes[n].host for n in self.path]

    def latency(self, overlay, network) -> float:
        """Accumulated one-way physical latency along the route (ms)."""
        return network.path_latency(self.host_path(overlay))
