"""eCAN: the expressway-augmented, hierarchical CAN.

eCAN overlays a quadtree of *high-order zones* on the CAN space:
every ``2^d`` order-``i`` zones form one order-``(i+1)`` zone, so the
level-``l`` high-order zones are exactly the level-``l`` quadtree
cells of :mod:`repro.overlay.zone`.  A node whose CAN zone sits at
quadtree level ``L`` is a member of the high-order zones that enclose
it at levels ``1..L``; besides its default CAN neighbors it keeps, at
every such level, one *representative* for each of the ``2^d - 1``
sibling cells of its own cell.  Routing first jumps along the highest
differing level (each jump lands inside the target's cell at that
level, Pastry-style prefix correction), then finishes with default
CAN hops inside the finest shared cell -- O(log N) hops overall.

The choice of representative is exactly the freedom that
proximity-neighbor selection exploits; it is abstracted behind
:class:`NeighborPolicy`:

* :class:`RandomNeighborPolicy` -- the paper's baseline ("each node
  simply randomly picks one node from the neighboring zone").
* :class:`ClosestNeighborPolicy` -- the oracle *optimal*: the
  physically closest member, as if infinitely many RTT measurements
  were allowed.
* :class:`repro.softstate.neighbor_selection.SoftStateNeighborPolicy`
  -- the paper's contribution: consult the global soft-state map of
  the sibling zone, then probe RTTs to the top candidates.

Table entries are validated lazily at use; a dead or stale entry is
repaired through the policy and charged as a ``table_repair``
message.
"""

from __future__ import annotations

from bisect import bisect_left, insort

import numpy as np

from repro.overlay.can import CanOverlay
from repro.overlay.routing import RouteResult
from repro.overlay.zone import cell_center, point_cell, sibling_cells

#: hard cap on indexed quadtree depth; 2^24 cells per side is far beyond
#: any overlay size this simulator will see.
MAX_LEVEL = 24


class NeighborPolicy:
    """Strategy for choosing a high-order (expressway) neighbor."""

    #: short name used in experiment tables
    name = "base"

    def select(self, ecan: "EcanOverlay", node_id: int, level: int, cell, candidates):
        """Pick a representative for ``cell`` from ``candidates``.

        ``candidates`` is a non-empty list of member node ids.  May
        return ``None`` to decline (the caller falls back to a random
        member).  Implementations charge their own measurement cost to
        ``ecan.stats``.
        """
        raise NotImplementedError


class RandomNeighborPolicy(NeighborPolicy):
    """Baseline: a uniformly random member of the sibling zone."""

    name = "random"

    def __init__(self, rng=None):
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def select(self, ecan, node_id, level, cell, candidates):
        return candidates[int(self.rng.integers(0, len(candidates)))]


class ClosestNeighborPolicy(NeighborPolicy):
    """Oracle optimal: the physically closest member (free of charge).

    Models the limit of infinitely many RTT measurements; the paper's
    "optimal" curves use this policy.
    """

    name = "optimal"

    def __init__(self, network):
        self.network = network

    def select(self, ecan, node_id, level, cell, candidates):
        host = ecan.can.nodes[node_id].host
        best = None
        for candidate in candidates:
            dist = self.network.latency(host, ecan.can.nodes[candidate].host)
            if best is None or (dist, candidate) < best:
                best = (dist, candidate)
        return best[1]


class EcanOverlay:
    """Hierarchical CAN with policy-driven high-order neighbor tables."""

    def __init__(
        self,
        dims: int = 2,
        torus: bool = True,
        rng=None,
        stats=None,
        policy: NeighborPolicy = None,
        network=None,
        retry_policy=None,
        dead_entry_threshold: int = 3,
    ):
        self.can = CanOverlay(dims=dims, torus=torus, rng=rng, stats=stats)
        self.stats = stats
        #: optional Network; only consulted for fault injection on hops
        self.network = network
        #: optional RetryPolicy driving per-hop resend + backoff; None
        #: models fire-and-forget forwarding (a lost hop fails the route)
        self.retry_policy = retry_policy
        #: expressway entries are dropped after this many failed hops
        self.dead_entry_threshold = dead_entry_threshold
        #: (node, level, cell) -> consecutive failed delivery attempts
        self._entry_failures: dict = {}
        # Neither the default policy nor fallback picks may draw from the
        # join-point stream (can.rng), or two overlays differing only in
        # policy would grow structurally different zone layouts.
        self.policy = (
            policy if policy is not None
            else RandomNeighborPolicy(np.random.default_rng(0xECA9))
        )
        self._fallback_rng = np.random.default_rng(0x5F5E1)
        # level -> {cell tuple -> sorted list of node ids whose zone
        # fits inside}; kept sorted incrementally so member queries on
        # the selection hot path never re-sort
        self._members: dict = {}
        # node id -> list of (level, cell) index entries, for clean removal
        self._indexed: dict = {}
        # node id -> {level -> {sibling cell -> representative node id}}
        self._tables: dict = {}
        # (entry, level, cell) -> bool validity verdicts, flushed when
        # the tessellation version moves (None key holds the version)
        self._valid_memo: dict = {}
        self.can.observers.append(self._on_can_event)

    # -- conveniences ------------------------------------------------------

    @property
    def dims(self) -> int:
        return self.can.dims

    @property
    def nodes(self) -> dict:
        return self.can.nodes

    def __len__(self) -> int:
        return len(self.can)

    def _count(self, category: str, n: int = 1) -> None:
        if self.stats is not None and category is not None and n:
            self.stats.count(category, n)

    # -- membership index --------------------------------------------------

    def _on_can_event(self, event: str, node_id: int) -> None:
        if event in ("join", "zone_change"):
            self._reindex(node_id)
        elif event == "leave":
            self._unindex(node_id)
            self._tables.pop(node_id, None)
            for key in [k for k in self._entry_failures if k[0] == node_id]:
                del self._entry_failures[key]

    def _unindex(self, node_id: int) -> None:
        for level, cell in self._indexed.pop(node_id, ()):
            bucket = self._members.get(level)
            if bucket is None:
                continue
            members = bucket.get(cell)
            if members is not None:
                i = bisect_left(members, node_id)
                if i < len(members) and members[i] == node_id:
                    members.pop(i)
                if not members:
                    del bucket[cell]

    def _reindex(self, node_id: int) -> None:
        self._unindex(node_id)
        node = self.can.nodes.get(node_id)
        if node is None:
            return
        entries = []
        for zone in node.zones:
            for level in range(1, min(zone.max_level, MAX_LEVEL) + 1):
                cell = zone.cell(level)
                members = self._members.setdefault(level, {}).setdefault(cell, [])
                # two zones of one node can share a cell; keep ids unique
                i = bisect_left(members, node_id)
                if i >= len(members) or members[i] != node_id:
                    insort(members, node_id)
                entries.append((level, cell))
        self._indexed[node_id] = entries

    def members(self, level: int, cell, exclude: int = None) -> list:
        """Sorted member node ids of the high-order zone ``(level, cell)``.

        Only nodes whose zone lies fully inside the cell are indexed;
        if none exists, the single node whose (larger) zone covers the
        cell's center is returned instead.
        """
        found = self._members.get(level, {}).get(cell)
        if found:
            if exclude is None:
                return list(found)
            out = [n for n in found if n != exclude]
            if out:
                return out
        owner = self.can.owner_of_point(cell_center(cell, level))
        return [] if owner == exclude else [owner]

    # -- membership operations ------------------------------------------------

    def join(self, node_id: int, host: int, point=None, start_node=None):
        """Join the CAN, then build the newcomer's high-order tables."""
        node = self.can.join(node_id, host, point=point, start_node=start_node)
        self.build_table(node_id)
        return node

    def leave(self, node_id: int) -> None:
        """Leave the overlay; stale references elsewhere repair lazily."""
        self.can.leave(node_id)

    def takeover_dead(self, node_id: int, dead=()) -> set:
        """Absorb a crashed member's zones and eagerly invalidate it.

        Unlike :meth:`leave`, every expressway table entry pointing at
        the corpse is evicted immediately (charged as
        ``eager_invalidate``) instead of waiting for a route to trip
        over it.  Returns the set of taker node ids.
        """
        takers = self.can.takeover_dead(node_id, dead=dead)
        self.invalidate_member(node_id)
        return takers

    def invalidate_member(self, dead_id: int) -> int:
        """Evict ``dead_id`` from every node's expressway table.

        The eager counterpart of the lazy ``table_repair`` path: after
        a confirmed death the recovery layer invalidates all entries at
        once so no route pays a failed hop to discover the corpse.
        Returns the number of entries evicted.
        """
        removed = 0
        for node_id, table in self._tables.items():
            for level, row in table.items():
                doomed = [cell for cell, entry in row.items() if entry == dead_id]
                for cell in doomed:
                    del row[cell]
                    self._entry_failures.pop((node_id, level, cell), None)
                    removed += 1
        if removed:
            self._count("eager_invalidate", removed)
        return removed

    # -- high-order tables -------------------------------------------------------

    def _select(self, node_id: int, level: int, cell) -> int:
        candidates = self.members(level, cell, exclude=node_id)
        if not candidates:
            return None
        chosen = self.policy.select(self, node_id, level, cell, candidates)
        if chosen is None:
            chosen = candidates[int(self._fallback_rng.integers(0, len(candidates)))]
        self._count("neighbor_select")
        return chosen

    def build_table(self, node_id: int, max_level: int = None) -> None:
        """(Re)build all high-order entries for ``node_id`` via the policy."""
        node = self.can.nodes[node_id]
        zone = node.zone
        table: dict = {}
        top = zone.max_level if max_level is None else min(max_level, zone.max_level)
        for level in range(1, top + 1):
            own_cell = zone.cell(level)
            row = {}
            for sibling in sibling_cells(own_cell):
                entry = self._select(node_id, level, sibling)
                if entry is not None:
                    row[sibling] = entry
            table[level] = row
        self._tables[node_id] = table

    def refresh_entry(self, node_id: int, level: int, cell) -> int:
        """Re-run the policy for one table slot (used by pub/sub repair)."""
        entry = self._select(node_id, level, cell)
        if entry is not None:
            self._tables.setdefault(node_id, {}).setdefault(level, {})[cell] = entry
        return entry

    def table_entry(self, node_id: int, level: int, cell):
        """Current representative for ``cell``, repairing lazily if stale."""
        table = self._tables.setdefault(node_id, {})
        row = table.setdefault(level, {})
        entry = row.get(cell)
        if entry is not None and self._entry_valid(entry, level, cell):
            return entry, False
        repaired = entry is not None
        entry = self._select(node_id, level, cell)
        if entry is None:
            row.pop(cell, None)
            return None, repaired
        if repaired:
            self._count("table_repair")
        row[cell] = entry
        return entry, repaired

    def _entry_valid(self, entry: int, level: int, cell) -> bool:
        # validity is a pure function of the tessellation, so verdicts
        # are memoised until any zone changes (can.zone_version bumps)
        version = self.can.zone_version
        memo = self._valid_memo
        if memo.get(None) != version:
            memo.clear()
            memo[None] = version
        key = (entry, level, cell)
        hit = memo.get(key)
        if hit is not None:
            return hit
        memo[key] = verdict = self._entry_valid_uncached(entry, level, cell)
        return verdict

    def _entry_valid_uncached(self, entry: int, level: int, cell) -> bool:
        node = self.can.nodes.get(entry)
        if node is None:
            return False
        side = 1.0 / (1 << level)
        lo = [c * side for c in cell]
        hi = [(c + 1) * side for c in cell]
        for zone in node.zones:
            if all(
                zl < h and l < zh
                for zl, zh, l, h in zip(zone.lo, zone.hi, lo, hi)
            ):
                return True
        return False

    def table_of(self, node_id: int) -> dict:
        """Read-only view of a node's high-order table (level -> cell -> id)."""
        return self._tables.get(node_id, {})

    # -- routing ---------------------------------------------------------------

    def _try_hop(self, src_host: int, dst_host: int, category: str, result) -> bool:
        """Attempt to deliver one forwarding hop, retrying per the policy.

        Every send attempt is charged under ``category`` (a lost
        message was still transmitted); injected faults are accounted
        by the injector itself.  Without an armed injector the first
        attempt always succeeds -- the perfect-network fast path.
        """
        self._count(category)
        telemetry = getattr(self.network, "telemetry", None)
        if telemetry is not None:
            if telemetry.tracing:
                telemetry.emit("hop", category=category)
            else:
                telemetry.bump("hop")
        faults = self.network.faults if self.network is not None else None
        if faults is None or not faults.armed:
            return True
        if faults.deliver(src_host, dst_host):
            return True
        policy = self.retry_policy
        if policy is None:
            return False
        for attempt in range(1, policy.max_attempts):
            policy.sleep(attempt - 1, clock=self.network.clock, telemetry=telemetry)
            result.retries += 1
            self._count(category)
            if telemetry is not None:
                telemetry.emit("hop", category=category, resend=True)
            if faults.deliver(src_host, dst_host):
                return True
        return False

    def _record_entry_failure(self, node_id: int, level: int, cell) -> None:
        """One more failed delivery through an expressway entry.

        After ``dead_entry_threshold`` consecutive failures the entry
        is evicted so the next route re-selects through the policy.
        """
        key = (node_id, level, cell)
        failures = self._entry_failures.get(key, 0) + 1
        if failures >= self.dead_entry_threshold:
            self._entry_failures.pop(key, None)
            row = self._tables.get(node_id, {}).get(level)
            if row is not None:
                row.pop(cell, None)
            self._count("expressway_dead_skip")
        else:
            self._entry_failures[key] = failures

    def next_hop(self, node_id: int, point, visited=frozenset()) -> tuple:
        """One perfect-network forwarding decision from ``node_id``.

        Returns ``(next_id, kind)``: ``(None, "delivered")`` when the
        point lies in the node's own zone, ``(id, "expressway")`` for a
        high-order jump, ``(id, "can")`` for a greedy CAN hop, or
        ``(None, "stuck")`` when every neighbor was already visited.
        Mirrors the fault-free branch of :meth:`route` exactly -- the
        live runtime (:mod:`repro.runtime`) forwards one wire frame
        per decision, and the resulting hop sequence matches what the
        synchronous simulator would produce for the same tessellation.
        """
        nodes = self.can.nodes
        current = nodes[node_id]
        if current.contains(point):
            return None, "delivered"
        zcells = current.zone.cells()
        diff_level = None
        target_cell = None
        for level in range(1, len(zcells)):
            cell = point_cell(point, level)
            if zcells[level] != cell:
                diff_level = level
                target_cell = cell
                break
        if diff_level is not None:
            entry, _ = self.table_entry(node_id, diff_level, target_cell)
            if entry is not None and entry not in visited:
                return entry, "expressway"
        best = min(
            (
                (nodes[n].distance_to_point(point, self.can.torus), n)
                for n in current.neighbors
                if n not in visited
            ),
            default=None,
        )
        if best is None:
            return None, "stuck"
        return best[1], "can"

    def route(
        self,
        start_node: int,
        point,
        category: str = "ecan_route",
        max_hops: int = 512,
    ) -> RouteResult:
        """Prefix-style routing: expressway jumps, then CAN greedy hops.

        With faults armed, each hop is a (possibly lost) message send:
        a :class:`RetryPolicy` resends with sim-clock backoff,
        expressway entries that keep failing are skipped (and evicted
        after ``dead_entry_threshold`` strikes) in favour of greedy
        CAN neighbors, and alternative neighbors are tried before the
        route is declared failed.  Without a policy a single lost hop
        fails the route -- the fire-and-forget baseline.
        """
        if start_node not in self.can.nodes:
            raise KeyError(f"start node {start_node} not present")
        path = [start_node]
        visited = {start_node}
        unreachable: set = set()
        result = RouteResult(path=path)
        nodes = self.can.nodes
        torus = self.can.torus
        current = nodes[start_node]
        degrade = self.retry_policy is not None
        faults = self.network.faults if self.network is not None else None
        perfect = faults is None or not faults.armed
        # the destination point is fixed for the whole route, so its
        # quadtree cell per level is computed once and reused per hop
        pcells: list = [None]
        while not current.contains(point):
            if len(path) > max_hops:
                result.owner = None
                result.success = False
                return result
            next_id = None
            zcells = current.zone.cells()
            top = len(zcells)
            while len(pcells) < top:
                pcells.append(point_cell(point, len(pcells)))
            diff_level = None
            for level in range(1, top):
                if zcells[level] != pcells[level]:
                    diff_level = level
                    break
            if diff_level is not None:
                target_cell = pcells[diff_level]
                entry, repaired = self.table_entry(
                    current.node_id, diff_level, target_cell
                )
                result.repairs += int(repaired)
                if entry is not None and entry not in visited and entry not in unreachable:
                    if self._try_hop(
                        current.host, nodes[entry].host, category, result
                    ):
                        next_id = entry
                        result.expressway_hops += 1
                        self._entry_failures.pop(
                            (current.node_id, diff_level, target_cell), None
                        )
                    else:
                        self._record_entry_failure(
                            current.node_id, diff_level, target_cell
                        )
                        if not degrade:
                            result.owner = None
                            result.success = False
                            return result
                        unreachable.add(entry)
                        result.degraded += 1
            if next_id is None:
                candidates = (
                    (nodes[n].distance_to_point(point, torus), n)
                    for n in current.neighbors
                    if n not in visited and n not in unreachable
                )
                if perfect:
                    # without faults the first attempt always delivers,
                    # so only the nearest candidate is ever tried -- a
                    # min() picks the same (distance, id) pair a full
                    # sort would put first
                    best = min(candidates, default=None)
                    if best is None:
                        result.owner = None
                        result.success = False
                        return result
                    neighbor_id = best[1]
                    self._try_hop(
                        current.host, nodes[neighbor_id].host, category, result
                    )
                    next_id = neighbor_id
                    result.can_hops += 1
                else:
                    for _, neighbor_id in sorted(candidates):
                        if self._try_hop(
                            current.host,
                            nodes[neighbor_id].host,
                            category,
                            result,
                        ):
                            next_id = neighbor_id
                            result.can_hops += 1
                            break
                        if not degrade:
                            result.owner = None
                            result.success = False
                            return result
                        unreachable.add(neighbor_id)
                    if next_id is None:
                        result.owner = None
                        result.success = False
                        return result
            current = nodes[next_id]
            visited.add(next_id)
            path.append(next_id)
        result.owner = current.node_id
        return result
