"""eCAN: the expressway-augmented, hierarchical CAN.

eCAN overlays a quadtree of *high-order zones* on the CAN space:
every ``2^d`` order-``i`` zones form one order-``(i+1)`` zone, so the
level-``l`` high-order zones are exactly the level-``l`` quadtree
cells of :mod:`repro.overlay.zone`.  A node whose CAN zone sits at
quadtree level ``L`` is a member of the high-order zones that enclose
it at levels ``1..L``; besides its default CAN neighbors it keeps, at
every such level, one *representative* for each of the ``2^d - 1``
sibling cells of its own cell.  Routing first jumps along the highest
differing level (each jump lands inside the target's cell at that
level, Pastry-style prefix correction), then finishes with default
CAN hops inside the finest shared cell -- O(log N) hops overall.

The choice of representative is exactly the freedom that
proximity-neighbor selection exploits; it is abstracted behind
:class:`NeighborPolicy`:

* :class:`RandomNeighborPolicy` -- the paper's baseline ("each node
  simply randomly picks one node from the neighboring zone").
* :class:`ClosestNeighborPolicy` -- the oracle *optimal*: the
  physically closest member, as if infinitely many RTT measurements
  were allowed.
* :class:`repro.softstate.neighbor_selection.SoftStateNeighborPolicy`
  -- the paper's contribution: consult the global soft-state map of
  the sibling zone, then probe RTTs to the top candidates.

Table entries are validated lazily at use; a dead or stale entry is
repaired through the policy and charged as a ``table_repair``
message.
"""

from __future__ import annotations

import numpy as np

from repro.overlay.can import CanOverlay
from repro.overlay.routing import RouteResult
from repro.overlay.zone import cell_center, point_cell, sibling_cells

#: hard cap on indexed quadtree depth; 2^24 cells per side is far beyond
#: any overlay size this simulator will see.
MAX_LEVEL = 24


class NeighborPolicy:
    """Strategy for choosing a high-order (expressway) neighbor."""

    #: short name used in experiment tables
    name = "base"

    def select(self, ecan: "EcanOverlay", node_id: int, level: int, cell, candidates):
        """Pick a representative for ``cell`` from ``candidates``.

        ``candidates`` is a non-empty list of member node ids.  May
        return ``None`` to decline (the caller falls back to a random
        member).  Implementations charge their own measurement cost to
        ``ecan.stats``.
        """
        raise NotImplementedError


class RandomNeighborPolicy(NeighborPolicy):
    """Baseline: a uniformly random member of the sibling zone."""

    name = "random"

    def __init__(self, rng=None):
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def select(self, ecan, node_id, level, cell, candidates):
        return candidates[int(self.rng.integers(0, len(candidates)))]


class ClosestNeighborPolicy(NeighborPolicy):
    """Oracle optimal: the physically closest member (free of charge).

    Models the limit of infinitely many RTT measurements; the paper's
    "optimal" curves use this policy.
    """

    name = "optimal"

    def __init__(self, network):
        self.network = network

    def select(self, ecan, node_id, level, cell, candidates):
        host = ecan.can.nodes[node_id].host
        best = None
        for candidate in candidates:
            dist = self.network.latency(host, ecan.can.nodes[candidate].host)
            if best is None or (dist, candidate) < best:
                best = (dist, candidate)
        return best[1]


class EcanOverlay:
    """Hierarchical CAN with policy-driven high-order neighbor tables."""

    def __init__(
        self,
        dims: int = 2,
        torus: bool = True,
        rng=None,
        stats=None,
        policy: NeighborPolicy = None,
    ):
        self.can = CanOverlay(dims=dims, torus=torus, rng=rng, stats=stats)
        self.stats = stats
        # Neither the default policy nor fallback picks may draw from the
        # join-point stream (can.rng), or two overlays differing only in
        # policy would grow structurally different zone layouts.
        self.policy = (
            policy if policy is not None
            else RandomNeighborPolicy(np.random.default_rng(0xECA9))
        )
        self._fallback_rng = np.random.default_rng(0x5F5E1)
        # level -> {cell tuple -> set(node ids whose zone fits inside)}
        self._members: dict = {}
        # node id -> list of (level, cell) index entries, for clean removal
        self._indexed: dict = {}
        # node id -> {level -> {sibling cell -> representative node id}}
        self._tables: dict = {}
        self.can.observers.append(self._on_can_event)

    # -- conveniences ------------------------------------------------------

    @property
    def dims(self) -> int:
        return self.can.dims

    @property
    def nodes(self) -> dict:
        return self.can.nodes

    def __len__(self) -> int:
        return len(self.can)

    def _count(self, category: str, n: int = 1) -> None:
        if self.stats is not None and category is not None and n:
            self.stats.count(category, n)

    # -- membership index --------------------------------------------------

    def _on_can_event(self, event: str, node_id: int) -> None:
        if event in ("join", "zone_change"):
            self._reindex(node_id)
        elif event == "leave":
            self._unindex(node_id)
            self._tables.pop(node_id, None)

    def _unindex(self, node_id: int) -> None:
        for level, cell in self._indexed.pop(node_id, ()):
            bucket = self._members.get(level)
            if bucket is None:
                continue
            members = bucket.get(cell)
            if members is not None:
                members.discard(node_id)
                if not members:
                    del bucket[cell]

    def _reindex(self, node_id: int) -> None:
        self._unindex(node_id)
        node = self.can.nodes.get(node_id)
        if node is None:
            return
        entries = []
        for zone in node.zones:
            for level in range(1, min(zone.max_level, MAX_LEVEL) + 1):
                cell = zone.cell(level)
                self._members.setdefault(level, {}).setdefault(cell, set()).add(node_id)
                entries.append((level, cell))
        self._indexed[node_id] = entries

    def members(self, level: int, cell, exclude: int = None) -> list:
        """Sorted member node ids of the high-order zone ``(level, cell)``.

        Only nodes whose zone lies fully inside the cell are indexed;
        if none exists, the single node whose (larger) zone covers the
        cell's center is returned instead.
        """
        found = self._members.get(level, {}).get(cell)
        if found:
            out = sorted(n for n in found if n != exclude)
            if out:
                return out
        owner = self.can.owner_of_point(cell_center(cell, level))
        return [] if owner == exclude else [owner]

    # -- membership operations ------------------------------------------------

    def join(self, node_id: int, host: int, point=None, start_node=None):
        """Join the CAN, then build the newcomer's high-order tables."""
        node = self.can.join(node_id, host, point=point, start_node=start_node)
        self.build_table(node_id)
        return node

    def leave(self, node_id: int) -> None:
        """Leave the overlay; stale references elsewhere repair lazily."""
        self.can.leave(node_id)

    # -- high-order tables -------------------------------------------------------

    def _select(self, node_id: int, level: int, cell) -> int:
        candidates = self.members(level, cell, exclude=node_id)
        if not candidates:
            return None
        chosen = self.policy.select(self, node_id, level, cell, candidates)
        if chosen is None:
            chosen = candidates[int(self._fallback_rng.integers(0, len(candidates)))]
        self._count("neighbor_select")
        return chosen

    def build_table(self, node_id: int, max_level: int = None) -> None:
        """(Re)build all high-order entries for ``node_id`` via the policy."""
        node = self.can.nodes[node_id]
        zone = node.zone
        table: dict = {}
        top = zone.max_level if max_level is None else min(max_level, zone.max_level)
        for level in range(1, top + 1):
            own_cell = zone.cell(level)
            row = {}
            for sibling in sibling_cells(own_cell):
                entry = self._select(node_id, level, sibling)
                if entry is not None:
                    row[sibling] = entry
            table[level] = row
        self._tables[node_id] = table

    def refresh_entry(self, node_id: int, level: int, cell) -> int:
        """Re-run the policy for one table slot (used by pub/sub repair)."""
        entry = self._select(node_id, level, cell)
        if entry is not None:
            self._tables.setdefault(node_id, {}).setdefault(level, {})[cell] = entry
        return entry

    def table_entry(self, node_id: int, level: int, cell):
        """Current representative for ``cell``, repairing lazily if stale."""
        table = self._tables.setdefault(node_id, {})
        row = table.setdefault(level, {})
        entry = row.get(cell)
        if entry is not None and self._entry_valid(entry, level, cell):
            return entry, False
        repaired = entry is not None
        entry = self._select(node_id, level, cell)
        if entry is None:
            row.pop(cell, None)
            return None, repaired
        if repaired:
            self._count("table_repair")
        row[cell] = entry
        return entry, repaired

    def _entry_valid(self, entry: int, level: int, cell) -> bool:
        node = self.can.nodes.get(entry)
        if node is None:
            return False
        side = 1.0 / (1 << level)
        lo = [c * side for c in cell]
        hi = [(c + 1) * side for c in cell]
        for zone in node.zones:
            if all(
                zl < h and l < zh
                for zl, zh, l, h in zip(zone.lo, zone.hi, lo, hi)
            ):
                return True
        return False

    def table_of(self, node_id: int) -> dict:
        """Read-only view of a node's high-order table (level -> cell -> id)."""
        return self._tables.get(node_id, {})

    # -- routing ---------------------------------------------------------------

    def route(
        self,
        start_node: int,
        point,
        category: str = "ecan_route",
        max_hops: int = 512,
    ) -> RouteResult:
        """Prefix-style routing: expressway jumps, then CAN greedy hops."""
        if start_node not in self.can.nodes:
            raise KeyError(f"start node {start_node} not present")
        path = [start_node]
        visited = {start_node}
        result = RouteResult(path=path)
        current = self.can.nodes[start_node]
        while not current.contains(point):
            if len(path) > max_hops:
                result.owner = None
                result.success = False
                return result
            next_id = None
            zone = current.zone
            diff_level = None
            for level in range(1, zone.max_level + 1):
                if zone.cell(level) != point_cell(point, level):
                    diff_level = level
                    break
            if diff_level is not None:
                target_cell = point_cell(point, diff_level)
                entry, repaired = self.table_entry(
                    current.node_id, diff_level, target_cell
                )
                result.repairs += int(repaired)
                if entry is not None and entry not in visited:
                    next_id = entry
                    result.expressway_hops += 1
            if next_id is None:
                best = None
                for neighbor_id in current.neighbors:
                    if neighbor_id in visited:
                        continue
                    neighbor = self.can.nodes[neighbor_id]
                    dist = neighbor.distance_to_point(point, self.can.torus)
                    if best is None or (dist, neighbor_id) < best:
                        best = (dist, neighbor_id)
                if best is None:
                    result.owner = None
                    result.success = False
                    return result
                next_id = best[1]
                result.can_hops += 1
            current = self.can.nodes[next_id]
            visited.add(next_id)
            path.append(next_id)
            self._count(category)
        result.owner = current.node_id
        return result
