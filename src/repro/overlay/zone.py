"""Zones: dyadic hyper-rectangles of the CAN Cartesian space.

All zones are produced from the unit hypercube ``[0, 1)^d`` by
repeated halving, cycling through the dimensions in order (the split
dimension of a zone at depth ``k`` is ``k mod d``).  Halving is exact
in binary floating point, so zone boundaries compare exactly and all
the adjacency / containment predicates below are precise.

A zone at depth ``k`` has per-dimension extents ``2^-(k//d)`` or
``2^-(k//d + 1)`` and is therefore fully contained in exactly one
*quadtree cell* at every level ``l <= k // d``.  These cells are
eCAN's high-order zones (every ``2^d`` level-``l+1`` cells form a
level-``l`` cell); :meth:`Zone.cell` computes them.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache


@dataclass(frozen=True)
class Zone:
    """A half-open dyadic box ``[lo, hi)`` in the unit hypercube."""

    lo: tuple
    hi: tuple
    depth: int = 0

    @classmethod
    def root(cls, dims: int) -> "Zone":
        """The entire Cartesian space ``[0, 1)^dims``."""
        if dims < 1:
            raise ValueError("dims must be >= 1")
        return cls(lo=(0.0,) * dims, hi=(1.0,) * dims, depth=0)

    @property
    def dims(self) -> int:
        return len(self.lo)

    @property
    def split_dim(self) -> int:
        """The dimension along which this zone will next be split."""
        return self.depth % self.dims

    @property
    def max_level(self) -> int:
        """Finest quadtree level at which this zone fits a single cell."""
        return self.depth // self.dims

    def extent(self, dim: int) -> float:
        return self.hi[dim] - self.lo[dim]

    def volume(self) -> float:
        vol = 1.0
        for lo, hi in zip(self.lo, self.hi):
            vol *= hi - lo
        return vol

    def center(self) -> tuple:
        return tuple((lo + hi) / 2.0 for lo, hi in zip(self.lo, self.hi))

    def contains(self, point) -> bool:
        """Half-open containment test."""
        lo = self.lo
        hi = self.hi
        for i in range(len(lo)):
            x = point[i]
            if x < lo[i] or x >= hi[i]:
                return False
        return True

    # -- splitting / merging ----------------------------------------------

    def split(self) -> tuple:
        """Halve along :attr:`split_dim`; returns (lower, upper) children."""
        dim = self.split_dim
        mid = (self.lo[dim] + self.hi[dim]) / 2.0
        lo_hi = list(self.hi)
        lo_hi[dim] = mid
        hi_lo = list(self.lo)
        hi_lo[dim] = mid
        lower = Zone(self.lo, tuple(lo_hi), self.depth + 1)
        upper = Zone(tuple(hi_lo), self.hi, self.depth + 1)
        return lower, upper

    def is_sibling(self, other: "Zone") -> bool:
        """True if ``self`` and ``other`` are the two halves of one split."""
        if self.depth != other.depth or self.depth == 0:
            return False
        dim = (self.depth - 1) % self.dims
        for i in range(self.dims):
            if i == dim:
                continue
            if self.lo[i] != other.lo[i] or self.hi[i] != other.hi[i]:
                return False
        if not (self.hi[dim] == other.lo[dim] or other.hi[dim] == self.lo[dim]):
            return False
        # Abutting same-shape zones may still belong to *different* parents
        # (upper half of one parent next to the lower half of the next);
        # true siblings re-join into a box aligned at an even multiple of
        # the child extent.
        extent = self.hi[dim] - self.lo[dim]
        child_index = round(min(self.lo[dim], other.lo[dim]) / extent)
        return child_index % 2 == 0

    def merge(self, other: "Zone") -> "Zone":
        """Re-join two sibling zones into their parent."""
        if not self.is_sibling(other):
            raise ValueError(f"{self} and {other} are not siblings")
        lo = tuple(min(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(max(a, b) for a, b in zip(self.hi, other.hi))
        return Zone(lo, hi, self.depth - 1)

    # -- adjacency ----------------------------------------------------------

    def is_neighbor(self, other: "Zone", torus: bool = True) -> bool:
        """CAN neighbor test: abut in exactly one dim, overlap in the rest."""
        abut_count = 0
        for i in range(self.dims):
            a_lo, a_hi = self.lo[i], self.hi[i]
            b_lo, b_hi = other.lo[i], other.hi[i]
            if a_lo < b_hi and b_lo < a_hi:
                continue  # proper overlap in this dimension
            abuts = a_hi == b_lo or b_hi == a_lo
            if torus and not abuts:
                abuts = (a_hi == 1.0 and b_lo == 0.0) or (b_hi == 1.0 and a_lo == 0.0)
            if not abuts:
                return False  # disjoint with a gap: not a neighbor
            abut_count += 1
            if abut_count > 1:
                return False
        return abut_count == 1

    # -- distances -----------------------------------------------------------

    def distance_to_point(self, point, torus: bool = True) -> float:
        """Euclidean distance from the zone to ``point`` (0 if inside)."""
        total = 0.0
        los = self.lo
        his = self.hi
        for i in range(len(los)):
            lo = los[i]
            hi = his[i]
            x = point[i]
            if lo <= x < hi:
                continue
            gap_lo = x - lo if x >= lo else lo - x
            gap_hi = x - hi if x >= hi else hi - x
            gap = gap_lo if gap_lo < gap_hi else gap_hi
            if torus:
                wrapped = 1.0 - (hi - lo) - gap
                if wrapped < gap:
                    gap = wrapped
            total += gap * gap
        return total ** 0.5

    # -- quadtree cells --------------------------------------------------------

    def cell(self, level: int) -> tuple:
        """Index of the level-``level`` cell containing this zone.

        Valid for ``0 <= level <= max_level``; the cell index is a
        tuple of per-dimension integers in ``[0, 2^level)``.  Zones are
        immutable, so the result is memoised per instance (routing asks
        for the same cells on every hop through a node).
        """
        cells = self.__dict__.get("_cells")
        if cells is None:
            cells = {}
            object.__setattr__(self, "_cells", cells)
        hit = cells.get(level)
        if hit is not None:
            return hit
        if level < 0 or level > self.max_level:
            raise ValueError(
                f"zone at depth {self.depth} has no single cell at level {level}"
            )
        scale = 1 << level
        cells[level] = result = tuple(int(lo * scale) for lo in self.lo)
        return result

    def cells(self) -> tuple:
        """Cells of every level ``0..max_level``, memoised as one tuple.

        Lets routing scan for the first differing level with plain
        indexing instead of a method call per level.
        """
        got = self.__dict__.get("_cells_all")
        if got is None:
            got = tuple(self.cell(level) for level in range(self.max_level + 1))
            object.__setattr__(self, "_cells_all", got)
        return got


def point_cell(point, level: int) -> tuple:
    """Index of the level-``level`` quadtree cell containing ``point``."""
    scale = 1 << level
    top = scale - 1
    return tuple([c if (c := int(x * scale)) < top else top for x in point])


def cell_center(cell: tuple, level: int) -> tuple:
    """Center point of a quadtree cell."""
    side = 1.0 / (1 << level)
    return tuple((c + 0.5) * side for c in cell)


@lru_cache(maxsize=1 << 14)
def cell_zone(cell: tuple, level: int) -> Zone:
    """The quadtree cell as a :class:`Zone` (depth = level * dims)."""
    side = 1.0 / (1 << level)
    lo = tuple(c * side for c in cell)
    hi = tuple((c + 1) * side for c in cell)
    return Zone(lo, hi, depth=level * len(cell))


def parent_cell(cell: tuple) -> tuple:
    """Parent of a quadtree cell (one level coarser)."""
    return tuple(c >> 1 for c in cell)


def sibling_cells(cell: tuple):
    """The other ``2^d - 1`` cells sharing this cell's parent."""
    dims = len(cell)
    base = tuple((c >> 1) << 1 for c in cell)
    for mask in range(1 << dims):
        candidate = tuple(base[i] + ((mask >> i) & 1) for i in range(dims))
        if candidate != cell:
            yield candidate


def torus_distance(a, b) -> float:
    """Euclidean distance between points on the unit torus."""
    total = 0.0
    for x, y in zip(a, b):
        gap = abs(x - y)
        gap = min(gap, 1.0 - gap)
        total += gap * gap
    return total ** 0.5
