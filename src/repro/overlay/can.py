"""The basic content-addressable network (CAN).

A CAN partitions a d-dimensional unit torus into zones, one owner
node per zone (after churn a node may temporarily own several zones,
as in the original CAN's takeover procedure).  Keys are points in the
space; the node whose zone contains a point owns it.

* **Join** -- the newcomer picks a random point, routes to the owner
  of that point, and splits the owner's zone in half (split dimension
  cycles with depth), taking the half that contains its point.
* **Leave** -- each zone of the departing node is handed to a
  neighbor: the owner of the zone's *sibling* if that sibling is
  intact (producing a clean merge), otherwise the smallest-volume
  neighboring node, which then holds multiple zones until merges
  become possible.
* **Routing** -- greedy geographic forwarding on the torus: each hop
  moves to the neighbor whose zone is closest to the target point.
  A visited set guards against ties/cycles (cannot happen in a
  well-formed CAN, but keeps routing total under any state).

Message accounting: every forwarding hop is charged to the overlay's
:class:`~repro.netsim.network.MessageStats` when one is attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.overlay.routing import RouteResult
from repro.overlay.zone import Zone


@dataclass
class CanNode:
    """State of one CAN participant."""

    node_id: int
    host: int
    zones: list = field(default_factory=list)
    neighbors: set = field(default_factory=set)

    @property
    def zone(self) -> Zone:
        """Primary zone (the first one; nodes usually own exactly one)."""
        return self.zones[0]

    def contains(self, point) -> bool:
        zones = self.zones
        if len(zones) == 1:  # the overwhelmingly common case
            return zones[0].contains(point)
        return any(z.contains(point) for z in zones)

    def distance_to_point(self, point, torus: bool = True) -> float:
        zones = self.zones
        if len(zones) == 1:
            return zones[0].distance_to_point(point, torus)
        return min(z.distance_to_point(point, torus) for z in zones)

    def total_volume(self) -> float:
        return sum(z.volume() for z in self.zones)


class CanOverlay:
    """A d-dimensional CAN over simulated hosts."""

    def __init__(self, dims: int = 2, torus: bool = True, rng=None, stats=None):
        if dims < 1:
            raise ValueError("dims must be >= 1")
        self.dims = dims
        self.torus = torus
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.stats = stats
        self.nodes: dict = {}
        # owner lookup: depth -> {integer index tuple -> node_id}
        self._by_depth: dict = {}
        self._node_order: list = []
        #: observers notified as (event, node_id) on zone-set changes
        self.observers: list = []
        #: monotonically increasing tessellation version; bumped on every
        #: zone-set mutation so external caches can key their validity off it
        self.zone_version = 0
        #: point -> owner memo; a pure function of the tessellation, so it
        #: is cleared wholesale whenever a zone is (un)indexed.  Local data
        #: structure only -- resolutions through it are never charged.
        self._owner_memo: dict = {}
        #: kill switch for the memo (the determinism regression test runs
        #: with it off to prove caching never leaks into charged behavior)
        self.owner_cache_enabled = True

    # -- bookkeeping -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node_id) -> bool:
        return node_id in self.nodes

    def _count(self, category: str, n: int = 1) -> None:
        if self.stats is not None and category is not None and n:
            self.stats.count(category, n)

    @staticmethod
    def _zone_index(zone: Zone) -> tuple:
        """Integer grid index of a zone among equal-shaped zones of its depth."""
        return tuple(
            int(round(lo / (hi - lo))) for lo, hi in zip(zone.lo, zone.hi)
        )

    def _index_zone(self, zone: Zone, node_id: int) -> None:
        self._by_depth.setdefault(zone.depth, {})[self._zone_index(zone)] = node_id
        self._invalidate_owners()

    def _unindex_zone(self, zone: Zone) -> None:
        bucket = self._by_depth.get(zone.depth)
        if bucket is not None:
            bucket.pop(self._zone_index(zone), None)
            if not bucket:
                del self._by_depth[zone.depth]
        self._invalidate_owners()

    def _invalidate_owners(self) -> None:
        self.zone_version += 1
        if self._owner_memo:
            self._owner_memo.clear()

    def _notify(self, event: str, node_id: int) -> None:
        for observer in self.observers:
            observer(event, node_id)

    def random_node(self) -> int:
        """A uniformly random current member (for bootstrap contacts)."""
        if not self._node_order:
            raise RuntimeError("overlay is empty")
        while True:
            node_id = self._node_order[int(self.rng.integers(0, len(self._node_order)))]
            if node_id in self.nodes:
                return node_id
            # lazily compact the order list when it accumulates dead entries
            if len(self._node_order) > 2 * len(self.nodes):
                self._node_order = list(self.nodes)

    def random_point(self) -> tuple:
        return tuple(float(x) for x in self.rng.random(self.dims))

    # -- owner lookup (local data structure, not charged) --------------------

    def owner_of_point(self, point) -> int:
        """Node id owning ``point``; memoized O(#distinct depths) walk.

        The memo is a pure cache over the current tessellation,
        invalidated wholesale on every zone-set mutation; resolving an
        owner is local computation and never charged.
        """
        key = point if type(point) is tuple else tuple(point)
        if not self.owner_cache_enabled:
            return self._resolve_owner(key)
        memo = self._owner_memo
        owner = memo.get(key)
        if owner is None:
            owner = self._resolve_owner(key)
            if len(memo) >= (1 << 17):
                memo.clear()
            memo[key] = owner
        return owner

    def _resolve_owner(self, point) -> int:
        for depth in self._by_depth:
            zones = self._by_depth[depth]
            # reconstruct the index the containing zone of this depth would have
            idx = []
            for dim in range(self.dims):
                splits = depth // self.dims + (1 if dim < depth % self.dims else 0)
                idx.append(min((1 << splits) - 1, int(point[dim] * (1 << splits))))
            node_id = zones.get(tuple(idx))
            if node_id is not None:
                return node_id
        raise KeyError(f"no owner for point {point}")

    def owners_of_points(self, points) -> list:
        """Batch :meth:`owner_of_point`; deduplicates repeated positions.

        Condensed proximity maps place many records at few distinct
        positions, so resolving each distinct point once (on top of the
        memo) makes sweeps over whole maps near dictionary-speed.
        """
        seen: dict = {}
        out = []
        for point in points:
            key = point if type(point) is tuple else tuple(point)
            owner = seen.get(key)
            if owner is None:
                owner = self.owner_of_point(key)
                seen[key] = owner
            out.append(owner)
        return out

    # -- membership -----------------------------------------------------------

    def join(self, node_id: int, host: int, point=None, start_node=None) -> CanNode:
        """Add ``node_id`` (running on physical ``host``) to the overlay."""
        if node_id in self.nodes:
            raise ValueError(f"node {node_id} already present")
        node = CanNode(node_id=node_id, host=host)
        if not self.nodes:
            root = Zone.root(self.dims)
            node.zones.append(root)
            self.nodes[node_id] = node
            self._index_zone(root, node_id)
            self._node_order.append(node_id)
            self._notify("join", node_id)
            return node

        if point is None:
            point = self.random_point()
        if start_node is None:
            start_node = self.random_node()
        result = self.route(start_node, point, category="join_route")
        owner = self.nodes[result.owner]

        # split the owner's zone that contains the join point
        zone = next(z for z in owner.zones if z.contains(point))
        lower, upper = zone.split()
        keep, give = (upper, lower) if lower.contains(point) else (lower, upper)
        owner.zones[owner.zones.index(zone)] = keep
        node.zones.append(give)
        self._unindex_zone(zone)
        self._index_zone(keep, owner.node_id)
        self._index_zone(give, node_id)
        self.nodes[node_id] = node
        self._node_order.append(node_id)

        # neighbor updates are local: the newcomer can only abut the old
        # owner and the owner's previous neighbors.
        self._rewire({owner.node_id, node_id} | set(owner.neighbors))
        self._count("join_update", len(node.neighbors) + 1)
        self._notify("join", node_id)
        self._notify("zone_change", owner.node_id)
        return node

    def leave(self, node_id: int) -> set:
        """Remove ``node_id``; its zones are taken over by neighbors."""
        return self._depart(node_id, exclude={node_id}, category="leave_update")

    def takeover_dead(self, node_id: int, dead=(), category: str = "crash_takeover") -> set:
        """Absorb a *crashed* member's zones (failure-detector driven).

        Same zone handover as :meth:`leave`, but charged under
        ``category`` and with ``dead`` -- other members currently
        believed dead -- excluded from the taker candidates, so one
        corpse never absorbs another's zones during a mass-crash
        repair.  Returns the set of taker node ids.
        """
        exclude = {node_id} | {int(d) for d in dead}
        return self._depart(node_id, exclude=exclude, category=category)

    def _depart(self, node_id: int, exclude: set, category: str) -> set:
        node = self.nodes.get(node_id)
        if node is None:
            raise KeyError(f"node {node_id} not present")
        if len(self.nodes) == 1:
            for zone in node.zones:
                self._unindex_zone(zone)
            del self.nodes[node_id]
            self._notify("leave", node_id)
            return set()

        affected = set(node.neighbors)
        takers = set()
        for zone in list(node.zones):
            self._unindex_zone(zone)
            taker = self._takeover_target(zone, exclude=exclude)
            taker_node = self.nodes[taker]
            taker_node.zones.append(zone)
            self._index_zone(zone, taker)
            takers.add(taker)
            self._count(category)
        del self.nodes[node_id]

        for taker in takers:
            self._merge_zones(self.nodes[taker])
        self._rewire(affected | takers)
        self._notify("leave", node_id)
        for taker in takers:
            self._notify("zone_change", taker)
        return takers

    def _takeover_target(self, zone: Zone, exclude) -> int:
        """Pick the node to absorb ``zone``: sibling owner, else the
        smallest-volume neighboring node, else (mass-crash fallback)
        the globally smallest-volume surviving node.

        ``exclude`` is the departing node id, or a collection of ids
        (the departing node plus any other currently-dead members).
        """
        if isinstance(exclude, (set, frozenset, list, tuple)):
            excluded = {int(e) for e in exclude}
        else:
            excluded = {int(exclude)}
        candidates = []
        for other_id, other in self.nodes.items():
            if other_id in excluded:
                continue
            for oz in other.zones:
                if zone.is_sibling(oz):
                    return other_id
            if any(zone.is_neighbor(oz, self.torus) for oz in other.zones):
                candidates.append((other.total_volume(), other_id))
        if not candidates:
            # After a mass crash every neighboring zone may belong to
            # another corpse; hand the zone to the globally
            # smallest-volume survivor rather than dying on a repair.
            survivors = [
                (other.total_volume(), other_id)
                for other_id, other in self.nodes.items()
                if other_id not in excluded
            ]
            if not survivors:
                raise RuntimeError(f"zone {zone} has no takeover candidate")
            self._count("takeover_fallback")
            return min(survivors)[1]
        return min(candidates)[1]

    def _merge_zones(self, node: CanNode) -> None:
        """Collapse sibling pairs held by one node into their parents."""
        merged = True
        while merged and len(node.zones) > 1:
            merged = False
            for i in range(len(node.zones)):
                for j in range(i + 1, len(node.zones)):
                    if node.zones[i].is_sibling(node.zones[j]):
                        parent = node.zones[i].merge(node.zones[j])
                        self._unindex_zone(node.zones[i])
                        self._unindex_zone(node.zones[j])
                        node.zones = [
                            z for k, z in enumerate(node.zones) if k not in (i, j)
                        ]
                        node.zones.insert(0, parent)
                        self._index_zone(parent, node.node_id)
                        merged = True
                        break
                if merged:
                    break

    def _adjacent(self, a: CanNode, b: CanNode) -> bool:
        return any(
            za.is_neighbor(zb, self.torus) for za in a.zones for zb in b.zones
        )

    def _rewire(self, node_ids) -> None:
        """Recompute neighbor sets for ``node_ids`` after local zone changes."""
        node_ids = {n for n in node_ids if n in self.nodes}
        # candidate peers: previous neighborhoods plus the changed set itself
        candidates = set(node_ids)
        for node_id in node_ids:
            candidates |= self.nodes[node_id].neighbors
        candidates = {c for c in candidates if c in self.nodes}

        for node_id in node_ids:
            node = self.nodes[node_id]
            old = node.neighbors
            new = {
                c
                for c in candidates
                if c != node_id and self._adjacent(node, self.nodes[c])
            }
            # keep still-valid links to nodes outside the candidate set
            for other_id in old - candidates:
                other = self.nodes.get(other_id)
                if other is not None and self._adjacent(node, other):
                    new.add(other_id)
            for other_id in old - new:
                other = self.nodes.get(other_id)
                if other is not None:
                    other.neighbors.discard(node_id)
            for other_id in new:
                self.nodes[other_id].neighbors.add(node_id)
            node.neighbors = new

    # -- routing -----------------------------------------------------------------

    def route(
        self,
        start_node: int,
        point,
        category: str = "can_route",
        max_hops: int = None,
    ) -> RouteResult:
        """Greedy-forward from ``start_node`` to the owner of ``point``."""
        if start_node not in self.nodes:
            raise KeyError(f"start node {start_node} not present")
        if max_hops is None:
            max_hops = 16 * self.dims * max(4, int(len(self.nodes) ** (1.0 / self.dims)) + 2)
        path = [start_node]
        visited = {start_node}
        current = self.nodes[start_node]
        while not current.contains(point):
            if len(path) > max_hops:
                return RouteResult(path=path, owner=None, success=False)
            best = None
            for neighbor_id in current.neighbors:
                if neighbor_id in visited:
                    continue
                neighbor = self.nodes[neighbor_id]
                dist = neighbor.distance_to_point(point, self.torus)
                if best is None or (dist, neighbor_id) < best:
                    best = (dist, neighbor_id)
            if best is None:
                return RouteResult(path=path, owner=None, success=False)
            current = self.nodes[best[1]]
            visited.add(best[1])
            path.append(best[1])
            self._count(category)
        return RouteResult(path=path, owner=current.node_id, success=True)

    # -- diagnostics ---------------------------------------------------------------

    def total_volume(self) -> float:
        """Sum of all zone volumes (must equal 1.0 in a consistent CAN)."""
        return sum(z.volume() for n in self.nodes.values() for z in n.zones)

    def check_invariants(self) -> None:
        """Raise AssertionError if the zone set or neighbor sets are broken."""
        volume = self.total_volume()
        assert abs(volume - 1.0) < 1e-9, f"zone volumes sum to {volume}"
        for node_id, node in self.nodes.items():
            assert node.zones, f"node {node_id} owns no zone"
            for neighbor_id in node.neighbors:
                assert neighbor_id in self.nodes, "dangling neighbor link"
                assert node_id in self.nodes[neighbor_id].neighbors, (
                    "asymmetric neighbor link"
                )
                assert self._adjacent(node, self.nodes[neighbor_id]), (
                    "non-adjacent neighbor link"
                )
            if len(self.nodes) > 1:
                assert node.neighbors, f"node {node_id} is isolated"
