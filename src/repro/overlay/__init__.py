"""CAN / eCAN overlay substrate.

* :mod:`repro.overlay.zone` -- dyadic hyper-rectangles of the CAN
  Cartesian space, with the quadtree cell arithmetic eCAN's
  high-order zones are built on.
* :mod:`repro.overlay.can` -- the basic content-addressable network:
  join (zone split), leave (takeover / merge), greedy routing over a
  d-dimensional torus.
* :mod:`repro.overlay.ecan` -- eCAN, the paper's Pastry-equivalent
  hierarchical CAN: high-order (expressway) routing tables with one
  representative per sibling cell at every level, giving O(log N)
  routing and the freedom in neighbor choice that proximity-neighbor
  selection exploits.
* :mod:`repro.overlay.routing` -- route results and path metrics.
"""

from repro.overlay.can import CanNode, CanOverlay
from repro.overlay.ecan import (
    ClosestNeighborPolicy,
    EcanOverlay,
    NeighborPolicy,
    RandomNeighborPolicy,
)
from repro.overlay.routing import RouteResult
from repro.overlay.zone import Zone

__all__ = [
    "CanNode",
    "CanOverlay",
    "ClosestNeighborPolicy",
    "EcanOverlay",
    "NeighborPolicy",
    "RandomNeighborPolicy",
    "RouteResult",
    "Zone",
]
