"""Global soft-state on Pastry: per-prefix maps and slot selection.

A Pastry prefix region is an aligned interval of the id space, so map
placement is the same 1-dimensional landmark-number scaling used on
Chord ("use a prefix of the nodeIds to partition the logical space
into grids", per the appendix): a node's record is stored, for every
prefix region containing its id, at the region's base id plus the
scaled landmark number (condensed to a prefix of the region).

The slot policy then mirrors eCAN's: to fill slot ``(row, digit)``, a
node looks up the map of the corresponding prefix region under its
own landmark number, receives the candidates closest in landmark
space, and RTT-probes the top few.
"""

from __future__ import annotations

import numpy as np

from repro.pastry.ring import PastryRing, SlotPolicy
from repro.softstate.records import NodeRecord


class PastrySoftState:
    """Publish / lookup proximity records over prefix regions."""

    def __init__(self, ring: PastryRing, network, space,
                 condense_rate: float = 1.0 / 16.0, max_results: int = 16):
        self.ring = ring
        self.network = network
        self.space = space  # LandmarkSpace
        self.condense_rate = condense_rate
        self.max_results = max_results
        self.registry: dict = {}
        #: region (row, prefix value) -> {node id -> (record, map key)}
        self.maps: dict = {}
        ring.observers.append(self._on_ring_event)

    def _on_ring_event(self, event: str, node_id: int) -> None:
        if event == "leave":
            self.withdraw(node_id, charge=False)

    # -- regions -------------------------------------------------------------

    def useful_rows(self) -> range:
        """Prefix lengths whose regions hold more than a node or two."""
        population = max(len(self.ring), 2)
        useful = max(1, int(np.ceil(np.log(population) / np.log(self.ring.base))))
        return range(1, min(useful + 1, self.ring.digits) + 1)

    def region_of(self, node_id: int, row: int) -> tuple:
        """Region key: ids sharing the first ``row`` digits with node_id."""
        shift = self.ring.bits - row * self.ring.digit_bits
        return (row, node_id >> shift)

    def region_bounds(self, region: tuple) -> tuple:
        row, prefix = region
        shift = self.ring.bits - row * self.ring.digit_bits
        lo = prefix << shift
        return lo, lo + (1 << shift)

    def map_key(self, landmark_number: int, region: tuple) -> int:
        lo, hi = self.region_bounds(region)
        span = max(1, int((hi - lo) * self.condense_rate))
        return lo + int(landmark_number / self.space.number_range * span)

    def regions_of(self, node_id: int) -> list:
        return [self.region_of(node_id, row) for row in self.useful_rows()]

    # -- publish / withdraw -----------------------------------------------------

    def register_identity(self, node_id: int, host: int, landmark_vector) -> NodeRecord:
        vector = tuple(float(x) for x in landmark_vector)
        record = NodeRecord(
            node_id=node_id,
            host=host,
            landmark_vector=vector,
            landmark_number=self.space.number(np.asarray(vector)),
        )
        self.registry[node_id] = record
        return record

    def publish(self, node_id: int, charge: bool = True) -> int:
        record = self.registry[node_id]
        wanted = set(self.regions_of(node_id))
        for region in [r for r in self.maps if node_id in self.maps[r]]:
            if region not in wanted:
                self.maps[region].pop(node_id, None)
                if not self.maps[region]:
                    del self.maps[region]
        for region in sorted(wanted):
            key = self.map_key(record.landmark_number, region)
            self.maps.setdefault(region, {})[node_id] = (record, key)
            if charge:
                self.ring.route(node_id, key, category="softstate_publish")
        return len(wanted)

    def withdraw(self, node_id: int, charge: bool = True) -> int:
        removed = 0
        for region in list(self.maps):
            if self.maps[region].pop(node_id, None) is not None:
                removed += 1
                if charge:
                    self.network.stats.count("softstate_withdraw")
            if not self.maps[region]:
                del self.maps[region]
        self.registry.pop(node_id, None)
        return removed

    # -- lookup --------------------------------------------------------------------

    def lookup(self, querier_id: int, region: tuple, max_results: int = None,
               charge: bool = True) -> list:
        if max_results is None:
            max_results = self.max_results
        own = self.registry[querier_id]
        key = self.map_key(own.landmark_number, region)
        if charge:
            self.ring.route(querier_id, key, category="softstate_lookup")
        bucket = self.maps.get(region, {})
        records = [
            rec for node_id, (rec, _k) in bucket.items()
            if node_id != querier_id and node_id in self.ring.nodes
        ]
        if not records:
            return []
        own_vector = np.asarray(own.landmark_vector)
        vectors = np.array([r.landmark_vector for r in records])
        order = np.argsort(
            np.linalg.norm(vectors - own_vector, axis=1), kind="stable"
        )
        return [records[i] for i in order[:max_results]]


class PastryClosestSlotPolicy(SlotPolicy):
    """Oracle: the physically closest prefix-matching node."""

    name = "optimal"

    def __init__(self, network):
        self.network = network

    def select(self, ring, node_id, row, digit, candidates):
        host = ring.nodes[node_id].host
        return min(
            candidates,
            key=lambda c: (self.network.latency(host, ring.nodes[c].host), c),
        )


class PastrySoftStateSlotPolicy(SlotPolicy):
    """The paper's technique on Pastry: map lookup + RTT confirmation."""

    name = "softstate"

    def __init__(self, softstate: PastrySoftState, network, rtt_budget: int = 10):
        self.softstate = softstate
        self.network = network
        self.rtt_budget = rtt_budget
        self._selecting = False

    def select(self, ring, node_id, row, digit, candidates):
        if self._selecting or node_id not in self.softstate.registry:
            return None
        lo, hi = ring.prefix_interval(node_id, row, digit)
        region = (row + 1, lo >> (ring.bits - (row + 1) * ring.digit_bits))
        self._selecting = True
        try:
            records = self.softstate.lookup(node_id, region)
        finally:
            self._selecting = False
        usable = [
            r for r in records
            if r.node_id != node_id and r.node_id in ring.nodes
            and lo <= r.node_id < hi
        ]
        if not usable:
            return None
        host = ring.nodes[node_id].host
        best = None
        for record in usable[: self.rtt_budget]:
            rtt = self.network.rtt(host, record.host, category="neighbor_probe")
            if best is None or (rtt, record.node_id) < best:
                best = (rtt, record.node_id)
        return best[1]


def build_soft_state_pastry(
    network,
    num_nodes: int,
    landmarks: int = 15,
    policy_name: str = "softstate",
    rtt_budget: int = 10,
    digits: int = 14,
    seed: int = 0,
    converge: bool = True,
):
    """Assemble a Pastry overlay with the chosen slot policy.

    Returns ``(ring, softstate)``; ``softstate`` is None unless the
    soft-state policy is selected.
    """
    from repro.pastry.ring import FirstSlotPolicy, RandomSlotPolicy
    from repro.proximity.landmarks import LandmarkSpace, select_landmarks

    seeds = np.random.SeedSequence(seed).spawn(4)
    ring_rng = np.random.default_rng(seeds[0])
    host_rng = np.random.default_rng(seeds[1])
    landmark_rng = np.random.default_rng(seeds[2])
    policy_rng = np.random.default_rng(seeds[3])

    ring = PastryRing(digits=digits, network=network, rng=ring_rng,
                      stats=network.stats)
    landmark_set = select_landmarks(network, landmarks, landmark_rng)
    space = LandmarkSpace(landmark_set)
    softstate = PastrySoftState(ring, network, space)

    if policy_name == "random":
        ring.policy = RandomSlotPolicy(policy_rng)
    elif policy_name == "first":
        ring.policy = FirstSlotPolicy()
    elif policy_name == "optimal":
        ring.policy = PastryClosestSlotPolicy(network)
    elif policy_name == "softstate":
        ring.policy = PastrySoftStateSlotPolicy(softstate, network, rtt_budget)
    else:
        raise ValueError(f"unknown slot policy {policy_name!r}")

    hosts = network.sample_hosts(num_nodes, host_rng)
    for host in hosts:
        node_id = ring.join(int(host))
        if policy_name == "softstate":
            vector = space.measure(network, int(host))
            softstate.register_identity(node_id, int(host), vector)
            softstate.publish(node_id)
        ring.build_table(node_id)
    if converge:
        if policy_name == "softstate":
            for node_id in ring.members():
                softstate.publish(node_id)
        for node_id in ring.members():
            ring.build_table(node_id)
    return ring, (softstate if policy_name == "softstate" else None)
