"""A Pastry overlay with policy-driven routing-table slots.

Ids are integers of ``digits`` base-``2^digit_bits`` digits (default
16 digits of 2 bits: a 32-bit id space).  Per node:

* a **leaf set** -- the ``leaf_span`` numerically closest members on
  each side of the id (derived from the globally consistent member
  list, modelling converged leaf-set maintenance);
* a **routing table** -- slot ``(row, digit)`` holds some member
  whose id shares the first ``row`` digits with the node and has
  ``digit`` at position ``row``.  *Any* such member qualifies: this
  is the freedom proximity-neighbor selection exploits, abstracted as
  :class:`SlotPolicy`.

Routing (Rowstron & Druschel, Middleware 2001): if the key falls in
the leaf-set range, jump to the numerically closest leaf; otherwise
forward to the slot matching one more prefix digit; if that slot is
empty, fall back to any known node strictly closer to the key with at
least as long a shared prefix.  Hop count is O(log_b N).

Stale slots (after churn) are repaired lazily through the policy and
charged as ``table_repair``, like the other overlays in this library.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

import numpy as np


def ring_distance(a: int, b: int, space: int) -> int:
    """Minimal circular distance between two ids."""
    gap = abs(a - b)
    return min(gap, space - gap)


@dataclass
class PastryNode:
    node_id: int
    host: int
    #: (row, digit) -> chosen node id
    table: dict = field(default_factory=dict)


class SlotPolicy:
    """Strategy for filling a routing-table slot."""

    name = "base"

    def select(self, ring: "PastryRing", node_id: int, row: int, digit: int,
               candidates):
        """Pick from non-empty ``candidates``; None means 'any'."""
        raise NotImplementedError


class FirstSlotPolicy(SlotPolicy):
    """Deterministic baseline: the numerically smallest candidate."""

    name = "first"

    def select(self, ring, node_id, row, digit, candidates):
        return min(candidates)


class RandomSlotPolicy(SlotPolicy):
    """The no-proximity baseline: any prefix-matching node."""

    name = "random"

    def __init__(self, rng=None):
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def select(self, ring, node_id, row, digit, candidates):
        return candidates[int(self.rng.integers(0, len(candidates)))]


class PastryRing:
    """The Pastry overlay."""

    def __init__(self, digits: int = 16, digit_bits: int = 2, leaf_span: int = 4,
                 network=None, rng=None, stats=None, policy: SlotPolicy = None):
        if digits < 2 or digit_bits < 1:
            raise ValueError("need digits >= 2 and digit_bits >= 1")
        self.digits = digits
        self.digit_bits = digit_bits
        self.base = 1 << digit_bits
        self.bits = digits * digit_bits
        self.space = 1 << self.bits
        self.leaf_span = leaf_span
        self.network = network
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.stats = stats
        self.policy = policy if policy is not None else RandomSlotPolicy(self.rng)
        self._ids: list = []
        self.nodes: dict = {}
        self.observers: list = []

    # -- bookkeeping -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.nodes

    def _count(self, category: str, n: int = 1) -> None:
        if self.stats is not None and category is not None and n:
            self.stats.count(category, n)

    def members(self) -> list:
        return list(self._ids)

    def random_member(self) -> int:
        if not self._ids:
            raise RuntimeError("ring is empty")
        return self._ids[int(self.rng.integers(0, len(self._ids)))]

    def random_key(self) -> int:
        return int(self.rng.integers(0, self.space))

    # -- id arithmetic -------------------------------------------------------

    def digit(self, node_id: int, row: int) -> int:
        """Digit at position ``row`` (0 = most significant)."""
        shift = self.bits - (row + 1) * self.digit_bits
        return (node_id >> shift) & (self.base - 1)

    def shared_prefix(self, a: int, b: int) -> int:
        """Number of leading digits ``a`` and ``b`` share."""
        for row in range(self.digits):
            if self.digit(a, row) != self.digit(b, row):
                return row
        return self.digits

    def prefix_interval(self, node_id: int, row: int, digit: int) -> tuple:
        """Id interval of 'shares first ``row`` digits, then ``digit``'."""
        shift = self.bits - (row + 1) * self.digit_bits
        prefix = node_id >> (shift + self.digit_bits)
        lo = ((prefix << self.digit_bits) | digit) << shift
        return lo, lo + (1 << shift)

    def prefix_members(self, lo: int, hi: int) -> list:
        i = bisect.bisect_left(self._ids, lo)
        j = bisect.bisect_left(self._ids, hi)
        return self._ids[i:j]

    def numerically_closest(self, key: int) -> int:
        """The member whose id is circularly closest to ``key``."""
        if not self._ids:
            raise RuntimeError("ring is empty")
        i = bisect.bisect_left(self._ids, key % self.space)
        best = None
        for candidate in (self._ids[i % len(self._ids)], self._ids[i - 1]):
            gap = ring_distance(candidate, key % self.space, self.space)
            if best is None or (gap, candidate) < best:
                best = (gap, candidate)
        return best[1]

    # -- membership ---------------------------------------------------------------

    def join(self, host: int, node_id: int = None) -> int:
        if node_id is None:
            while True:
                node_id = int(self.rng.integers(0, self.space))
                if node_id not in self.nodes:
                    break
        elif node_id in self.nodes:
            raise ValueError(f"id {node_id} already present")
        bisect.insort(self._ids, node_id)
        self.nodes[node_id] = PastryNode(node_id=node_id, host=host)
        if len(self._ids) > 1:
            self.route(self.random_member(), node_id, category="join_route")
        for observer in self.observers:
            observer("join", node_id)
        return node_id

    def leave(self, node_id: int) -> None:
        if node_id not in self.nodes:
            raise KeyError(f"id {node_id} not present")
        self._ids.remove(node_id)
        del self.nodes[node_id]
        for observer in self.observers:
            observer("leave", node_id)

    def invalidate_member(self, dead_id: int) -> int:
        """Eagerly drop every routing-table slot naming ``dead_id``.

        Crash recovery calls this once a death is *confirmed*, instead
        of leaving each stale slot to be discovered (and charged as
        ``table_repair``) on first use.  Returns slots removed.
        """
        removed = 0
        for node in self.nodes.values():
            stale = [s for s, entry in node.table.items() if entry == dead_id]
            for slot in stale:
                del node.table[slot]
            removed += len(stale)
        self._count("eager_invalidate", removed)
        return removed

    # -- leaf set -------------------------------------------------------------------

    def leaf_set(self, node_id: int) -> list:
        """The ``leaf_span`` members on each side (converged view)."""
        if node_id not in self.nodes:
            raise KeyError(f"id {node_id} not present")
        n = len(self._ids)
        if n == 1:
            return []
        i = self._ids.index(node_id)
        span = min(self.leaf_span, (n - 1) // 2 + 1)
        leaves = []
        for offset in range(1, span + 1):
            leaves.append(self._ids[(i + offset) % n])
            leaves.append(self._ids[(i - offset) % n])
        return sorted(set(leaves) - {node_id})

    def _in_leaf_range(self, node_id: int, key: int) -> bool:
        leaves = self.leaf_set(node_id)
        if not leaves:
            return True
        lo = min(leaves + [node_id])
        hi = max(leaves + [node_id])
        # treat the leaf set as covering [lo, hi] when it does not wrap;
        # near the wrap point fall back to distance comparison
        if hi - lo < self.space // 2:
            return lo <= key <= hi
        gap_self = ring_distance(node_id, key, self.space)
        return any(
            ring_distance(leaf, key, self.space) <= gap_self for leaf in leaves
        ) or gap_self == 0

    # -- routing table -----------------------------------------------------------------

    def _slot_candidates(self, node_id: int, row: int, digit: int) -> list:
        lo, hi = self.prefix_interval(node_id, row, digit)
        return [c for c in self.prefix_members(lo, hi) if c != node_id]

    def _select_slot(self, node_id: int, row: int, digit: int):
        candidates = self._slot_candidates(node_id, row, digit)
        if not candidates:
            return None
        chosen = self.policy.select(self, node_id, row, digit, candidates)
        if chosen is None:
            chosen = min(candidates)
        self._count("neighbor_select")
        return chosen

    def build_table(self, node_id: int, max_rows: int = None) -> None:
        """(Re)build the routing table through the policy."""
        node = self.nodes[node_id]
        node.table = {}
        rows = self.digits if max_rows is None else min(max_rows, self.digits)
        for row in range(rows):
            own_digit = self.digit(node_id, row)
            populated = False
            for digit in range(self.base):
                if digit == own_digit:
                    continue
                entry = self._select_slot(node_id, row, digit)
                if entry is not None:
                    node.table[(row, digit)] = entry
                    populated = True
            if not populated and row > 0:
                break  # deeper rows are empty once the prefix is unique

    def slot(self, node_id: int, row: int, digit: int):
        """Slot entry, lazily repaired when dead or stale."""
        node = self.nodes[node_id]
        entry = node.table.get((row, digit))
        if entry is not None and entry in self.nodes:
            lo, hi = self.prefix_interval(node_id, row, digit)
            if lo <= entry < hi:
                return entry
        repaired = entry is not None
        entry = self._select_slot(node_id, row, digit)
        if entry is None:
            node.table.pop((row, digit), None)
            return None
        if repaired:
            self._count("table_repair")
        node.table[(row, digit)] = entry
        return entry

    # -- routing --------------------------------------------------------------------------

    def route(self, start_id: int, key: int, category: str = "pastry_route",
              max_hops: int = None):
        """Prefix routing with leaf-set completion."""
        from repro.overlay.routing import RouteResult

        if start_id not in self.nodes:
            raise KeyError(f"start node {start_id} not present")
        if max_hops is None:
            max_hops = 4 * self.digits + 16
        key %= self.space
        owner = self.numerically_closest(key)
        path = [start_id]
        current = start_id
        result = RouteResult(path=path)
        while current != owner:
            if len(path) > max_hops:
                result.owner = None
                result.success = False
                return result
            next_hop = None
            if self._in_leaf_range(current, key):
                leaves = self.leaf_set(current) + [current]
                closest = min(
                    leaves,
                    key=lambda l: (ring_distance(l, key, self.space), l),
                )
                if closest != current:
                    next_hop = closest
            if next_hop is None:
                row = self.shared_prefix(current, key)
                if row >= self.digits:
                    next_hop = owner
                else:
                    entry = self.slot(current, row, self.digit(key, row))
                    if entry is not None and entry not in path:
                        next_hop = entry
            if next_hop is None:
                # rare fallback: any known node strictly closer to the key
                # with at least as long a prefix (leaf set serves as the
                # candidate pool, as in Pastry's rule)
                row = self.shared_prefix(current, key)
                gap = ring_distance(current, key, self.space)
                for candidate in self.leaf_set(current):
                    if candidate in path:
                        continue
                    if (
                        self.shared_prefix(candidate, key) >= row
                        and ring_distance(candidate, key, self.space) < gap
                    ):
                        next_hop = candidate
                        break
            if next_hop is None or next_hop in path:
                result.owner = None
                result.success = False
                return result
            path.append(next_hop)
            current = next_hop
            self._count(category)
        result.owner = owner
        return result

    # -- metrics -------------------------------------------------------------------------------

    def measure_stretch(self, samples: int, rng=None) -> np.ndarray:
        """Routing stretch over random member pairs (needs a network)."""
        if self.network is None:
            raise RuntimeError("ring has no attached network")
        if rng is None:
            rng = self.rng
        ids = np.array(self._ids)
        stretches = []
        attempts = 0
        while len(stretches) < samples and attempts < 4 * samples:
            attempts += 1
            src, dst = rng.choice(ids, size=2, replace=False)
            result = self.route(int(src), int(dst))
            if not result.success or result.owner != int(dst):
                continue
            hosts = [self.nodes[n].host for n in result.path]
            direct = self.network.latency(
                self.nodes[int(src)].host, self.nodes[int(dst)].host
            )
            if direct <= 1e-9:
                continue
            stretches.append(self.network.path_latency(hosts) / direct)
        return np.asarray(stretches)
