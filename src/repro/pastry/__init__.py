"""Pastry port of the global-soft-state technique.

Pastry is the paper's recurring comparison point: its
proximity-neighbor selection picks routing-table entries "according
to proximity metric among all nodes that satisfy the constraint of
the logical overlay (the nodeId prefix)", bootstrapped by
expanding-ring search or heuristics -- exactly the machinery the
paper replaces with global soft-state.  For Pastry, a *region* is the
set of nodes sharing an id prefix, and the appendix prescribes: "we
can use a prefix of the nodeIds to partition the logical space into
grids" for map placement.

* :mod:`repro.pastry.ring` -- a Pastry overlay: base-4 digit ids,
  leaf sets, per-(row, digit) routing tables with pluggable slot
  choice, standard prefix routing with the leaf-set shortcut.
* :mod:`repro.pastry.softstate` -- per-prefix-region proximity maps
  (an id prefix is an aligned ring interval, so placement reuses the
  1-d landmark-number scaling), plus the landmark+RTT slot policy.
"""

from repro.pastry.ring import (
    FirstSlotPolicy,
    PastryRing,
    RandomSlotPolicy,
    SlotPolicy,
)
from repro.pastry.softstate import (
    PastryClosestSlotPolicy,
    PastrySoftState,
    PastrySoftStateSlotPolicy,
    build_soft_state_pastry,
)

__all__ = [
    "FirstSlotPolicy",
    "PastryClosestSlotPolicy",
    "PastryRing",
    "PastrySoftState",
    "PastrySoftStateSlotPolicy",
    "RandomSlotPolicy",
    "SlotPolicy",
    "build_soft_state_pastry",
]
