"""Synthetic workloads.

The paper's evaluation workload is simple -- "measurements are made
for twice the number of nodes in the overlay", i.e. 2N routes between
random member pairs -- but the examples and ablation benches also use
skewed key popularity to exercise load imbalance.
"""

from __future__ import annotations

import numpy as np


def random_pairs(node_ids, count: int, rng: np.random.Generator) -> list:
    """``count`` ordered (src, dst) pairs of distinct members."""
    ids = np.asarray(list(node_ids))
    if len(ids) < 2:
        raise ValueError("need at least two nodes for pair workloads")
    pairs = []
    for _ in range(count):
        src, dst = rng.choice(ids, size=2, replace=False)
        pairs.append((int(src), int(dst)))
    return pairs


def poisson_arrivals(
    rate: float, count: int, rng: np.random.Generator
) -> np.ndarray:
    """``count`` cumulative arrival times of a Poisson process.

    Inter-arrival gaps are exponential with mean ``1/rate`` (arrivals
    per second), so the returned array is strictly increasing and
    starts after the first gap.  The open-loop load driver
    (:mod:`repro.runtime.loadgen`) fires one request at each offset
    regardless of how long earlier requests take -- the standard
    open-loop arrival model.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return np.cumsum(rng.exponential(1.0 / rate, size=count))


def uniform_points(count: int, dims: int, rng: np.random.Generator) -> np.ndarray:
    """Uniformly random lookup keys (points of the unit cube)."""
    return rng.random((count, dims))


def zipf_points(
    count: int,
    dims: int,
    rng: np.random.Generator,
    distinct: int = 64,
    exponent: float = 1.1,
) -> np.ndarray:
    """Zipf-popular lookup keys over ``distinct`` hot points.

    Rank ``k`` is drawn with probability proportional to
    ``k**-exponent`` -- a convenient stand-in for skewed object
    popularity when exercising forwarding-load imbalance.
    """
    if distinct < 1:
        raise ValueError("distinct must be >= 1")
    hot = rng.random((distinct, dims))
    weights = 1.0 / np.arange(1, distinct + 1) ** exponent
    weights /= weights.sum()
    choices = rng.choice(distinct, size=count, p=weights)
    return hot[choices]
