"""Workload generation for experiments and benches."""

from repro.workloads.generator import (
    random_pairs,
    uniform_points,
    zipf_points,
)

__all__ = ["random_pairs", "uniform_points", "zipf_points"]
