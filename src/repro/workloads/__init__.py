"""Workload generation for experiments and benches."""

from repro.workloads.generator import (
    poisson_arrivals,
    random_pairs,
    uniform_points,
    zipf_points,
)

__all__ = ["poisson_arrivals", "random_pairs", "uniform_points", "zipf_points"]
