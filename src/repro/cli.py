"""Command-line interface: regenerate figures without writing code.

Usage (also via ``python -m repro``)::

    python -m repro list                  # available experiments
    python -m repro run fig02             # one figure, table to stdout
    python -m repro run all               # everything
    python -m repro report                # rewrite EXPERIMENTS.md
    python -m repro quickstart            # the README demo

``--scale quick|paper`` overrides the ``REPRO_SCALE`` environment
variable for the invocation.
"""

from __future__ import annotations

import argparse
import os
import sys


def _figure_registry() -> dict:
    """Name -> zero-arg callable returning printable text."""
    from repro.experiments import format_table
    from repro.experiments import (
        churn_timeline,
        failure_resilience,
        fig02_hops,
        fig03_06_nn,
        fig10_13_stretch_rtts,
        fig14_15_stretch_nodes,
        fig16_condense,
        intro_tacan_imbalance,
        join_cost,
        pubsub_ablation,
        qos_load,
    )

    def table(rows):
        return format_table(rows)

    return {
        "fig02": lambda: table(fig02_hops.run()),
        "fig03": lambda: table(
            fig03_06_nn.run("tsk-large", methods=("lmk+rtt", "ers"))
        ),
        "fig04": lambda: table(fig03_06_nn.run("tsk-large", methods=("ers",))),
        "fig05": lambda: table(fig03_06_nn.run("tsk-small", methods=("lmk+rtt",))),
        "fig06": lambda: table(fig03_06_nn.run("tsk-small", methods=("ers",))),
        "fig10": lambda: table(fig10_13_stretch_rtts.run("tsk-large", "generated")),
        "fig11": lambda: table(fig10_13_stretch_rtts.run("tsk-large", "manual")),
        "fig12": lambda: table(fig10_13_stretch_rtts.run("tsk-small", "generated")),
        "fig13": lambda: table(fig10_13_stretch_rtts.run("tsk-small", "manual")),
        "fig14": lambda: table(fig14_15_stretch_nodes.run("generated")),
        "fig15": lambda: table(fig14_15_stretch_nodes.run("manual")),
        "fig16": lambda: table(fig16_condense.run()),
        "tacan": lambda: table(
            [
                {"layout": "topologically-aware CAN", **intro_tacan_imbalance.run()["tacan"]},
                {"layout": "uniform CAN", **intro_tacan_imbalance.run()["uniform"]},
            ]
        ),
        "gaps": lambda: table([fig10_13_stretch_rtts.gap_breakdown()]),
        "pubsub": lambda: table(pubsub_ablation.run()),
        "qos": lambda: table(qos_load.run()),
        "join-cost": lambda: table(join_cost.run()),
        "churn": lambda: table(churn_timeline.run()),
        "resilience": lambda: table(failure_resilience.run()),
        "fault-injection": lambda: table(failure_resilience.run_fault_injection()),
        "recovery": lambda: table(failure_resilience.run_recovery_policies()),
    }


def cmd_list(_args) -> int:
    print("experiments:")
    for name in _figure_registry():
        print(f"  {name}")
    print("\nrun one with: python -m repro run <name> [--scale quick|paper]")
    return 0


def _profiled(fn, top: int):
    """Run ``fn`` under cProfile; return (result, stats text)."""
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    result = profiler.runcall(fn)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    return result, buffer.getvalue()


def cmd_run(args) -> int:
    registry = _figure_registry()
    names = list(registry) if "all" in args.names else args.names
    unknown = [n for n in names if n not in registry]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(registry)}", file=sys.stderr)
        return 2
    for name in names:
        print(f"== {name} ==")
        if args.profile:
            text, profile = _profiled(registry[name], args.profile_top)
            print(text)
            print(f"-- profile ({name}, top {args.profile_top} by cumulative) --")
            print(profile)
        else:
            print(registry[name]())
        print()
    return 0


def cmd_report(_args) -> int:
    from repro.experiments import report

    report.main()
    return 0


def cmd_quickstart(_args) -> int:
    from repro import NetworkParams, OverlayParams, TopologyAwareOverlay, make_network

    network = make_network(
        NetworkParams(topology="tsk-large", latency="manual", topo_scale=0.5, seed=1)
    )
    overlay = TopologyAwareOverlay(
        network, OverlayParams(num_nodes=192, policy="softstate", seed=7)
    )
    overlay.build()
    stretch = overlay.measure_stretch()
    print(f"built: {overlay.describe()}")
    print(f"mean routing stretch: {stretch.mean():.2f} over {len(stretch)} routes")
    print(f"messages spent: {network.stats.total()}")
    return 0


def _install_uvloop() -> bool:
    """Switch the asyncio policy to uvloop when available.

    The container may not ship uvloop; the switch is best-effort and
    the stdlib event loop remains the (fully supported) fallback.
    """
    try:
        import uvloop
    except ImportError:
        print(
            "uvloop not installed; continuing on the stdlib event loop",
            file=sys.stderr,
        )
        return False
    uvloop.install()
    return True


def _cluster_config(args):
    """Build the :class:`ClusterConfig` a ``repro cluster`` run uses.

    Split from :func:`cmd_cluster` so tests can assert every CLI flag
    lands on the config without booting a cluster.
    """
    from repro.core.config import NetworkParams, OverlayParams
    from repro.runtime import ClusterConfig

    retry = None
    if args.retries > 1:
        from repro.core.reliability import RetryPolicy

        retry = RetryPolicy(max_attempts=args.retries)
    return ClusterConfig(
        nodes=args.nodes,
        network=NetworkParams(topo_scale=args.topo_scale, seed=args.seed),
        overlay=OverlayParams(num_nodes=args.nodes, seed=args.seed),
        transport=args.transport,
        wire_encoding=args.encoding,
        latency_scale=args.latency_scale,
        request_timeout=args.request_timeout,
        heartbeat_period=args.heartbeat_period,
        probe_timeout=args.probe_timeout,
        retry=retry,
        bulk_boot=args.bulk_boot,
        mailbox_cap=args.mailbox_cap if args.mailbox_cap > 0 else None,
        shed_policy=args.shed_policy,
        breaker_threshold=args.breaker_threshold,
        adaptive_timeout=args.adaptive_timeout,
        shards=args.shards,
    )


def cmd_cluster(args) -> int:
    """Boot a live cluster, drive lookups, print latency + parity."""
    import asyncio
    import inspect

    from repro.runtime import make_cluster

    if args.uvloop:
        _install_uvloop()
    config = _cluster_config(args)

    async def drive():
        cluster = make_cluster(config)
        await cluster.start()
        controller = None
        if args.status_port is not None:
            from repro.mgmt import Controller, ControllerConfig

            controller = Controller(
                cluster, ControllerConfig(port=args.status_port)
            )
            await controller.start()
            print(
                f"management API on {controller.url} "
                f"(/topology /stats /metrics /health, zone map at /)"
            )
        try:
            report = await cluster.run_load(
                rate=args.rate,
                count=args.lookups,
                seed=args.seed,
                concurrency=args.concurrency,
            )
            verdict = None
            if config.shards > 1 or not args.bulk_boot:
                # a single-process bulk boot shares membership and zones
                # with the sim but builds tables against the final
                # tessellation, so hop-for-hop parity is not expected;
                # sharded replicas build the reference the same way they
                # booted, so they verify in either mode
                verdict = await cluster.verify_against_sim(
                    lookups=min(args.lookups, 128), routes=32, seed=args.seed
                )
            overload = cluster.overload_counters()
            if inspect.isawaitable(overload):  # sharded: aggregated RPC
                overload = await overload
        finally:
            if controller is not None:
                await controller.stop()
            await cluster.stop()
        return report, verdict, overload

    report, verdict, overload = asyncio.run(drive())
    pct = report.percentiles()
    offered = (
        f"closed loop, {report.concurrency} in flight"
        if report.mode == "closed"
        else f"open loop at {args.rate:.0f}/s"
    )
    print(
        f"cluster: {args.nodes} nodes over {args.transport} "
        f"({args.encoding} frames), {report.ops} lookups, {offered}"
    )
    print(
        f"latency: p50 {pct['p50']:.3f} ms | p99 {pct['p99']:.3f} ms | "
        f"throughput {report.achieved_rate:.0f} ops/s | errors {report.errors}"
    )
    if report.retries:
        print(
            f"retries: {report.retries} "
            f"(backed off {report.backoff_ms:.0f} ms total)"
        )
    if overload["shed"] or overload["breaker_opens"] or overload["busy_replies"]:
        print(
            f"overload: shed {overload['shed']} | busy replies "
            f"{overload['busy_replies']} | breaker opens "
            f"{overload['breaker_opens']} (fast-fails "
            f"{overload['breaker_fastfails']})"
        )
    if verdict is None:
        print("verify-against-sim: skipped (--bulk-boot)")
        return 0 if report.errors == 0 else 1
    status = "ok" if verdict["ok"] else "MISMATCH"
    print(
        f"verify-against-sim: {status} "
        f"({verdict['mismatches']}/{verdict['checked']} mismatches)"
    )
    return 0 if verdict["ok"] and report.errors == 0 else 1


def _controller_configs(args):
    """Build the (cluster, controller) configs a ``repro controller``
    run uses.

    Split from :func:`cmd_controller` so tests can assert every CLI
    flag lands on the right config without booting anything.
    """
    from repro.core.config import NetworkParams, OverlayParams
    from repro.mgmt import ControllerConfig
    from repro.runtime import ClusterConfig

    cluster_config = ClusterConfig(
        nodes=args.nodes,
        network=NetworkParams(topo_scale=args.topo_scale, seed=args.seed),
        overlay=OverlayParams(num_nodes=args.nodes, seed=args.seed),
        transport=args.transport,
        wire_encoding=args.encoding,
        heartbeat_period=args.heartbeat_period,
        probe_timeout=args.probe_timeout,
        bulk_boot=args.bulk_boot,
        shards=args.shards,
    )
    controller_config = ControllerConfig(
        host=args.host,
        port=args.port,
        refresh_s=args.refresh,
        check_invariants=args.check_invariants,
    )
    return cluster_config, controller_config


def cmd_controller(args) -> int:
    """Boot a cluster and serve the management API until interrupted."""
    import asyncio

    from repro.mgmt import Controller
    from repro.runtime import NotSupportedError, make_cluster

    if args.uvloop:
        _install_uvloop()
    cluster_config, controller_config = _controller_configs(args)

    async def serve():
        cluster = make_cluster(cluster_config)
        await cluster.start()
        try:
            if args.recovery:
                try:
                    await cluster.enable_recovery()
                except NotSupportedError as exc:
                    print(f"recovery unavailable: {exc}", file=sys.stderr)
            async with Controller(cluster, controller_config) as controller:
                print(
                    f"controller: {args.nodes} nodes over {args.transport} "
                    f"({cluster_config.shards} shard(s)), serving "
                    f"{controller.url}"
                )
                print(
                    "endpoints: /topology /stats /metrics /health "
                    "(zone map at /)"
                )
                if args.duration > 0:
                    await asyncio.sleep(args.duration)
                else:
                    await asyncio.Event().wait()  # until Ctrl-C
        finally:
            await cluster.stop()
        return 0

    try:
        return asyncio.run(serve())
    except KeyboardInterrupt:
        print("controller stopped")
        return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Building Topology-Aware Overlays Using "
        "Global Soft-State' (ICDCS 2003)",
    )
    parser.add_argument(
        "--scale",
        choices=["quick", "paper"],
        help="experiment scale preset (overrides REPRO_SCALE)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments").set_defaults(
        func=cmd_list
    )
    run = sub.add_parser("run", help="run experiments and print their tables")
    run.add_argument("names", nargs="+", help="experiment names, or 'all'")
    run.add_argument(
        "--profile",
        action="store_true",
        help="run each experiment under cProfile and print the hot spots",
    )
    run.add_argument(
        "--profile-top",
        type=int,
        default=25,
        metavar="N",
        help="functions shown per profile (default 25, by cumulative time)",
    )
    run.set_defaults(func=cmd_run)
    cluster = sub.add_parser(
        "cluster",
        help="boot a live asyncio cluster, run lookups, report latency",
    )
    cluster.add_argument(
        "--nodes", type=int, default=64, help="overlay members to boot (default 64)"
    )
    cluster.add_argument(
        "--lookups", type=int, default=1000, help="lookups to drive (default 1000)"
    )
    cluster.add_argument(
        "--rate",
        type=float,
        default=2000.0,
        help="open-loop arrival rate, lookups/second (default 2000)",
    )
    cluster.add_argument(
        "--transport",
        choices=["loopback", "tcp"],
        default="loopback",
        help="wire transport (default loopback)",
    )
    cluster.add_argument(
        "--encoding",
        choices=["packed", "json"],
        default="packed",
        help="frame payload encoding: struct fast path or JSON-only "
        "(default packed)",
    )
    cluster.add_argument(
        "--concurrency",
        type=int,
        default=0,
        metavar="N",
        help="closed-loop worker pool holding N requests in flight; "
        "0 keeps the open-loop Poisson schedule (default 0)",
    )
    cluster.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="worker processes to shard the membership across; 1 keeps "
        "the classic single-process cluster (default 1)",
    )
    cluster.add_argument(
        "--uvloop",
        action="store_true",
        help="install the uvloop event-loop policy when available "
        "(falls back to the stdlib loop with a note)",
    )
    cluster.add_argument(
        "--latency-scale",
        type=float,
        default=0.0,
        help="wall seconds per simulated ms of one-way latency (default 0)",
    )
    cluster.add_argument(
        "--topo-scale",
        type=float,
        default=0.25,
        help="transit-stub topology scale (default 0.25)",
    )
    cluster.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="wall seconds before a pending request times out (default 30)",
    )
    cluster.add_argument(
        "--heartbeat-period",
        type=float,
        default=0.25,
        metavar="S",
        help="wall seconds between failure-detector rounds (default 0.25)",
    )
    cluster.add_argument(
        "--probe-timeout",
        type=float,
        default=0.5,
        metavar="S",
        help="wall seconds one HEARTBEAT probe waits (default 0.5)",
    )
    cluster.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="attempts per request: >1 arms a cluster-wide RetryPolicy "
        "with exponential backoff (default 1 = no resends)",
    )
    cluster.add_argument(
        "--bulk-boot",
        action="store_true",
        help="boot through the builder's batched bulk-join fast path "
        "(skips the hop-level sim-parity check: tables differ by design)",
    )
    cluster.add_argument(
        "--mailbox-cap",
        type=int,
        default=1024,
        metavar="N",
        help="data-lane depth cap per actor; frames past it are shed "
        "with a BUSY reply (0 = unbounded; default 1024)",
    )
    cluster.add_argument(
        "--shed-policy",
        choices=["oldest", "newest"],
        default="oldest",
        help="which frame a full data lane sheds: the queue head "
        "('oldest', admits the arrival) or the arrival itself "
        "('newest'); default oldest",
    )
    cluster.add_argument(
        "--breaker-threshold",
        type=int,
        default=8,
        metavar="K",
        help="consecutive BUSY/timeout failures that open a per-peer "
        "circuit breaker (0 disables breakers; default 8)",
    )
    cluster.add_argument(
        "--adaptive-timeout",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="derive per-peer request timeouts from EWMA RTT + variance "
        "(Jacobson RTO) instead of the static --request-timeout "
        "(default on; --no-adaptive-timeout restores static timeouts)",
    )
    cluster.add_argument(
        "--status-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve the management API (/topology /stats /metrics /health "
        "and the zone-map view) on this loopback port while the load "
        "runs (0 picks a free port; default off)",
    )
    cluster.add_argument("--seed", type=int, default=0, help="workload/overlay seed")
    cluster.set_defaults(func=cmd_cluster)
    controller = sub.add_parser(
        "controller",
        help="boot a cluster and serve the management API / zone-map view",
    )
    controller.add_argument(
        "--nodes", type=int, default=64, help="overlay members to boot (default 64)"
    )
    controller.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="worker processes to shard the membership across; 1 keeps "
        "the classic single-process cluster (default 1)",
    )
    controller.add_argument(
        "--transport",
        choices=["loopback", "tcp"],
        default="loopback",
        help="wire transport (default loopback)",
    )
    controller.add_argument(
        "--encoding",
        choices=["packed", "json"],
        default="packed",
        help="frame payload encoding (default packed)",
    )
    controller.add_argument(
        "--host",
        default="127.0.0.1",
        help="management API listen interface (default 127.0.0.1)",
    )
    controller.add_argument(
        "--port",
        type=int,
        default=8642,
        metavar="PORT",
        help="management API listen port; 0 picks a free one (default 8642)",
    )
    controller.add_argument(
        "--refresh",
        type=float,
        default=0.5,
        metavar="S",
        help="snapshot refresh period / cache lifetime, wall seconds "
        "(default 0.5)",
    )
    controller.add_argument(
        "--duration",
        type=float,
        default=0.0,
        metavar="S",
        help="serve for this many wall seconds then exit; 0 runs until "
        "Ctrl-C (default 0)",
    )
    controller.add_argument(
        "--heartbeat-period",
        type=float,
        default=0.25,
        metavar="S",
        help="wall seconds between failure-detector rounds (default 0.25)",
    )
    controller.add_argument(
        "--probe-timeout",
        type=float,
        default=0.5,
        metavar="S",
        help="wall seconds one HEARTBEAT probe waits (default 0.5)",
    )
    controller.add_argument(
        "--recovery",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="arm the SWIM failure detector so /health reports live "
        "verdicts (single-process clusters only; default on)",
    )
    controller.add_argument(
        "--check-invariants",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run the stack-wide invariant check on each /health "
        "(default on; disable when the scrape budget matters)",
    )
    controller.add_argument(
        "--bulk-boot",
        action="store_true",
        help="boot through the builder's batched bulk-join fast path",
    )
    controller.add_argument(
        "--topo-scale",
        type=float,
        default=0.25,
        help="transit-stub topology scale (default 0.25)",
    )
    controller.add_argument(
        "--uvloop",
        action="store_true",
        help="install the uvloop event-loop policy when available",
    )
    controller.add_argument(
        "--seed", type=int, default=0, help="workload/overlay seed"
    )
    controller.set_defaults(func=cmd_controller)
    sub.add_parser("report", help="rewrite EXPERIMENTS.md from benchmarks/out")\
        .set_defaults(func=cmd_report)
    sub.add_parser("quickstart", help="build one overlay and print its stretch")\
        .set_defaults(func=cmd_quickstart)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.scale:
        os.environ["REPRO_SCALE"] = args.scale
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout went away (e.g. piped into `head`); exit quietly
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
