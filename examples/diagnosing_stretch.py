"""Where does the remaining stretch come from?

The paper's §5.4 separates overlay stretch into a *structural* gap
(the prefix constraint) and an *information* gap (imperfect proximity
data).  This example drills one level deeper with the diagnostics
module:

* the per-hop latency profile shows the proximity-selection
  signature -- early, high-choice hops are short; the terminal hops
  inside the finest shared cell are where the structural gap lives;
* the table-quality report shows how close each level's installed
  representative is to the best member of its cell (the information
  gap, per level);
* the map placement report shows how the soft-state is spread across
  hosting nodes.

Run:  python examples/diagnosing_stretch.py
"""

from repro import NetworkParams, OverlayParams, TopologyAwareOverlay, make_network
from repro.core.diagnostics import (
    hop_latency_profile,
    map_placement_report,
    table_quality,
)


def main() -> None:
    network = make_network(
        NetworkParams(topology="tsk-large", latency="manual", topo_scale=0.5, seed=3)
    )
    overlay = TopologyAwareOverlay(
        network, OverlayParams(num_nodes=192, policy="softstate", seed=4)
    )
    overlay.build()
    for node_id in list(overlay.node_ids):
        overlay.ecan.build_table(node_id)
    stretch = overlay.measure_stretch(samples=400)
    print(f"overlay: {overlay.describe()}")
    print(f"mean stretch: {stretch.mean():.2f}\n")

    print("per-hop latency profile (proximity signature):")
    print(f"{'hop':>4s} {'mean ms':>8s} {'routes':>7s}")
    for row in hop_latency_profile(overlay, samples=300):
        print(f"{row['hop']:4d} {row['mean_latency_ms']:8.1f} {row['count']:7d}")

    print("\nexpressway table quality (1.0 = oracle pick per cell):")
    print(f"{'level':>6s} {'mean ratio':>11s} {'entries':>8s}")
    for row in table_quality(overlay, max_nodes=64):
        print(f"{row['level']:6d} {row['mean_ratio']:11.2f} {row['entries']:8d}")

    print("\nsoft-state placement (per region level):")
    print(f"{'level':>6s} {'regions':>8s} {'entries':>8s} {'hosts':>6s} {'max/node':>9s}")
    for row in map_placement_report(overlay.store):
        print(
            f"{row['level']:6d} {row['regions']:8d} {row['entries']:8d} "
            f"{row['hosting_nodes']:6d} {row['max_entries_one_node']:9d}"
        )
    print("\nreading: early hops are short (many candidates, good maps);")
    print("the last hops inside the finest cell carry the structural gap")


if __name__ == "__main__":
    main()
