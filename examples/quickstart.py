"""Quickstart: build a topology-aware overlay and measure what it buys.

Builds the same overlay membership three times -- random neighbor
selection, the paper's global-soft-state selection, and the oracle
optimum -- then routes the same workload over each and compares
routing stretch and message spend.

Run:  python examples/quickstart.py [num_nodes]
"""

import sys

import numpy as np

from repro import NetworkParams, OverlayParams, TopologyAwareOverlay, make_network, summarize


def main() -> None:
    num_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 256

    print(f"generating a transit-stub internet (tsk-large, manual latencies)...")
    results = {}
    for policy in ("random", "softstate", "optimal"):
        # a fresh Network per build keeps message accounting separate;
        # the same seeds keep overlay membership identical
        network = make_network(
            NetworkParams(topology="tsk-large", latency="manual",
                          topo_scale=0.5, seed=1)
        )
        overlay = TopologyAwareOverlay(
            network, OverlayParams(num_nodes=num_nodes, policy=policy, seed=7)
        )
        overlay.build()
        build_messages = network.stats.total()
        stretch = overlay.measure_stretch(samples=2 * num_nodes,
                                          rng=np.random.default_rng(99))
        results[policy] = {
            "stretch": summarize(stretch),
            "build_messages": build_messages,
            "info": overlay.describe(),
        }
        print(f"  built {policy:10s} overlay: {overlay.describe()}")

    print(f"\nrouting stretch over {2 * num_nodes} random member pairs:")
    print(f"{'policy':12s} {'mean':>7s} {'median':>7s} {'p95':>8s} "
          f"{'build msgs':>11s}")
    for policy, r in results.items():
        s = r["stretch"]
        print(f"{policy:12s} {s['mean']:7.2f} {s['median']:7.2f} "
              f"{s['p95']:8.2f} {r['build_messages']:11d}")

    random_mean = results["random"]["stretch"]["mean"]
    soft_mean = results["softstate"]["stretch"]["mean"]
    saving = 100 * (1 - soft_mean / random_mean)
    print(f"\nglobal soft-state cuts mean routing latency by {saving:.0f}% "
          f"versus random neighbor selection")
    print("(the 'optimal' row is the oracle: an infinite RTT budget)")


if __name__ == "__main__":
    main()
