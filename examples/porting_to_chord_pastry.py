"""Generality: the same soft-state machinery on eCAN, Chord and Pastry.

"The techniques are generic for overlay networks such as Pastry,
Chord, and eCAN, where there exists flexibility in selecting routing
neighbors."  This example builds all three overlays on the same
physical internet and fills their flexible slots three ways each.

The interesting comparison is *how much* proximity selection buys on
each structure: lots on eCAN and Pastry (base-4 hierarchies, most
hops have many candidates), less on Chord (a binary ring spends more
hops in tiny, low-choice intervals).

Run:  python examples/porting_to_chord_pastry.py
"""

import numpy as np

from repro import NetworkParams, OverlayParams, TopologyAwareOverlay, make_network
from repro.chord.softstate import build_soft_state_ring
from repro.netsim import Network
from repro.pastry import build_soft_state_pastry

NUM_NODES = 160
POLICIES = ("random", "softstate", "optimal")


def fresh_network():
    return make_network(
        NetworkParams(topology="tsk-large", latency="manual", topo_scale=0.5, seed=2)
    )


def ecan_stretch(policy: str) -> float:
    overlay = TopologyAwareOverlay(
        fresh_network(), OverlayParams(num_nodes=NUM_NODES, policy=policy, seed=5)
    )
    overlay.build()
    return float(overlay.measure_stretch(400, rng=np.random.default_rng(9)).mean())


def chord_stretch(policy: str) -> float:
    ring, _ = build_soft_state_ring(
        fresh_network(), NUM_NODES, policy_name=policy, bits=18, seed=5
    )
    return float(ring.measure_stretch(400, rng=np.random.default_rng(9)).mean())


def pastry_stretch(policy: str) -> float:
    ring, _ = build_soft_state_pastry(
        fresh_network(), NUM_NODES, policy_name=policy, digits=14, seed=5
    )
    return float(ring.measure_stretch(400, rng=np.random.default_rng(9)).mean())


def main() -> None:
    print(f"building {NUM_NODES}-node overlays on one transit-stub internet...\n")
    builders = {"eCAN": ecan_stretch, "Chord": chord_stretch, "Pastry": pastry_stretch}
    print(f"{'overlay':8s} " + " ".join(f"{p:>10s}" for p in POLICIES) + f" {'saving':>8s}")
    for name, fn in builders.items():
        values = {p: fn(p) for p in POLICIES}
        saving = 100 * (1 - values["softstate"] / values["random"])
        print(
            f"{name:8s} "
            + " ".join(f"{values[p]:10.2f}" for p in POLICIES)
            + f" {saving:7.0f}%"
        )
    print("\n(columns are mean routing stretch; 'saving' is soft-state vs random)")
    print("the base-4 hierarchies (eCAN, Pastry) give proximity selection more")
    print("high-choice hops than the binary Chord ring -- same ordering, bigger win")


if __name__ == "__main__":
    main()
