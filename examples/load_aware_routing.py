"""§6: publishing load with proximity, and trading one for the other.

Overlay nodes receive heavy-tailed forwarding capacities.  A skewed
(Zipf) lookup workload concentrates forwarding load on a few relays.
Each node publishes its load statistics into the soft-state maps next
to its proximity record; with a non-zero load weight, neighbor
selection scores candidates by RTT x (1 + w * utilization) and steers
traffic around saturated relays.

Run:  python examples/load_aware_routing.py
"""

import numpy as np

from repro import NetworkParams, OverlayParams, TopologyAwareOverlay, make_network, pareto_capacities
from repro.core.qos import LoadTracker
from repro.workloads import zipf_points


def run(load_weight: float, messages: int = 1024) -> dict:
    network = make_network(
        NetworkParams(topology="tsk-large", latency="manual", topo_scale=0.5, seed=8)
    )
    overlay = TopologyAwareOverlay(
        network,
        OverlayParams(num_nodes=192, policy="softstate",
                      load_weight=load_weight, seed=9),
    )
    rng = np.random.default_rng(10)
    for capacity in pareto_capacities(rng, 192, alpha=1.2):
        overlay.add_node(capacity=float(capacity))

    keys = zipf_points(messages, 2, rng, distinct=32)
    tracker = LoadTracker(overlay, window=messages / 8)
    ids = np.array(overlay.node_ids)

    def route_all() -> list:
        stretches = []
        for key in keys:
            src = int(rng.choice(ids))
            result = overlay.ecan.route(src, tuple(key))
            tracker.record_route(result)
            src_host = overlay.ecan.can.nodes[src].host
            dst_host = overlay.ecan.can.nodes[result.owner].host
            direct = network.latency(src_host, dst_host)
            if direct > 1e-9:
                stretches.append(result.latency(overlay.ecan.can, network) / direct)
        return stretches

    # §6 control loop: route, publish load, re-select -- repeatedly, the
    # way nodes "periodically publish these statistics"
    stretches = route_all()
    for _ in range(3):
        tracker.publish_all()
        for node_id in list(overlay.node_ids):
            overlay.ecan.build_table(node_id)
        tracker.reset_window()
        stretches = route_all()
    utilization = np.array(list(tracker.utilization().values()))
    return {
        "w": load_weight,
        "stretch": float(np.mean(stretches)),
        "max_util": float(utilization.max()),
        "p99_util": float(np.percentile(utilization, 99)),
    }


def main() -> None:
    print("routing a Zipf workload over heterogeneous-capacity nodes...\n")
    print(f"{'load weight':>12s} {'stretch':>8s} {'max util':>9s} {'p99 util':>9s}")
    rows = [run(w) for w in (0.0, 0.5, 2.0)]
    for row in rows:
        print(f"{row['w']:12.1f} {row['stretch']:8.2f} "
              f"{row['max_util']:9.2f} {row['p99_util']:9.2f}")
    base, aware = rows[0], rows[-1]
    print(f"\nload-aware selection cut the p99 relay utilization "
          f"{100 * (1 - aware['p99_util'] / base['p99_util']):.0f}% "
          f"for a {100 * (aware['stretch'] / base['stretch'] - 1):+.0f}% stretch change")
    print("(the single hottest relay is usually a default CAN hop the "
          "expressway policy cannot route around)")


if __name__ == "__main__":
    main()
