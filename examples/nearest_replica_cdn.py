"""Nearest-replica selection for a content network.

The paper's soft-state maps act as rendezvous points "for nodes to
discover other nodes that are physically near".  This example uses
that machinery for a CDN-style task: a subset of overlay nodes hold a
replica of some content; each client node finds a replica to fetch
from.

Three strategies are compared:

* random     -- pick any replica (what a DHT with no topology
                awareness does);
* softstate  -- look up the replica region's proximity map under the
                client's landmark number, then RTT-probe the returned
                candidates (the paper's hybrid);
* oracle     -- the true nearest replica (lower bound).

Run:  python examples/nearest_replica_cdn.py
"""

import numpy as np

from repro import NetworkParams, OverlayParams, TopologyAwareOverlay, make_network
from repro.softstate import Region
from repro.softstate.neighbor_selection import probe_and_pick


def main() -> None:
    rng = np.random.default_rng(11)
    network = make_network(
        NetworkParams(topology="tsk-small", latency="manual", topo_scale=0.5, seed=2)
    )
    overlay = TopologyAwareOverlay(
        network, OverlayParams(num_nodes=256, policy="softstate", seed=3)
    )
    overlay.build()
    print(f"overlay: {overlay.describe()}")

    members = np.array(overlay.node_ids)
    replicas = set(int(x) for x in rng.choice(members, size=24, replace=False))
    clients = [int(x) for x in rng.choice(
        [m for m in members if m not in replicas], size=48, replace=False)]
    print(f"{len(replicas)} replica holders, {len(clients)} clients")

    replica_records = [overlay.store.registry[r] for r in sorted(replicas)]
    replica_vectors = np.array([r.landmark_vector for r in replica_records])

    latencies = {"random": [], "softstate": [], "oracle": []}
    probes_before = network.stats.get("neighbor_probe")
    for client in clients:
        host = overlay.ecan.can.nodes[client].host
        # oracle
        direct = [network.latency(host, r.host) for r in replica_records]
        latencies["oracle"].append(min(direct))
        # random replica
        pick = int(rng.integers(0, len(replica_records)))
        latencies["random"].append(direct[pick])
        # soft-state: rank replicas by landmark-vector distance (this is
        # what the rendezvous node serving the map would return), then
        # confirm the top few with real probes
        own = np.asarray(overlay.store.registry[client].landmark_vector)
        order = np.argsort(np.linalg.norm(replica_vectors - own, axis=1))
        ranked = [replica_records[i] for i in order]
        best, rtt = probe_and_pick(network, host, ranked, budget=5)
        latencies["softstate"].append(rtt / 2.0)
    probes_spent = network.stats.get("neighbor_probe") - probes_before

    print(f"\nmean latency to the chosen replica (one-way ms):")
    for name in ("random", "softstate", "oracle"):
        print(f"  {name:10s} {np.mean(latencies[name]):8.2f}")
    print(f"\nsoft-state spent {probes_spent / len(clients):.0f} RTT probes per "
          f"client and got within "
          f"{100 * (np.mean(latencies['softstate']) / np.mean(latencies['oracle']) - 1):.0f}% "
          f"of the true nearest replica")


if __name__ == "__main__":
    main()
