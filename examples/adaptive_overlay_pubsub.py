"""Demand-driven overlay adaptation through publish/subscribe.

Every member subscribes to the high-order zones behind its expressway
entries with a "closer candidate joined" condition.  As a wave of new
nodes joins, notifications flow down distribution trees embedded in
the overlay, and only the affected entries are re-selected.

The same wave is replayed without subscriptions; the gap between the
two final stretches is what timely maintenance is worth, and the
message counters show what it costs.

Run:  python examples/adaptive_overlay_pubsub.py
"""

import numpy as np

from repro import NetworkParams, OverlayParams, TopologyAwareOverlay, make_network


def grow(adaptive: bool, joins: int = 96) -> dict:
    network = make_network(
        NetworkParams(topology="tsk-large", latency="manual", topo_scale=0.5, seed=4)
    )
    overlay = TopologyAwareOverlay(
        network, OverlayParams(num_nodes=128, policy="softstate", seed=6)
    )
    overlay.build()
    if adaptive:
        for node_id in list(overlay.node_ids):
            overlay.enable_adaptive(node_id)
    before = network.stats.snapshot()
    for _ in range(joins):
        new_id = overlay.add_node()
        if adaptive:
            overlay.enable_adaptive(new_id)
    delta = network.stats.delta(before)
    stretch = overlay.measure_stretch(samples=512, rng=np.random.default_rng(42))
    return {
        "mode": "pub/sub adaptive" if adaptive else "frozen tables",
        "final_nodes": len(overlay),
        "stretch": float(stretch.mean()),
        "notifications": delta.get("pubsub_notify", 0),
        "reselect_probes": delta.get("neighbor_probe", 0),
        "deliveries": len(overlay.pubsub.deliveries),
    }


def main() -> None:
    print("growing a 128-node overlay by 96 joins, twice...\n")
    frozen = grow(adaptive=False)
    adaptive = grow(adaptive=True)
    for row in (frozen, adaptive):
        print(f"{row['mode']:18s} stretch={row['stretch']:.2f} "
              f"notifications={row['notifications']:6d} "
              f"re-selection probes={row['reselect_probes']:6d}")
    saved = 100 * (1 - adaptive["stretch"] / frozen["stretch"])
    print(f"\ndemand-driven re-selection kept stretch {saved:.0f}% lower than "
          f"letting tables go stale;")
    print(f"{adaptive['deliveries']} notification trees carried "
          f"{adaptive['notifications']} messages total "
          f"({adaptive['notifications'] / max(adaptive['deliveries'], 1):.1f} per event)")


if __name__ == "__main__":
    main()
