"""Overload smoke: 2x closed-loop overload with the detector live.

The acceptance scenario for the overload-protection layer
(``runtime/node.py`` two-lane mailboxes + ``core/reliability.py``
client reaction), run by ``make overload-smoke`` and CI:

* boot a small loopback cluster with deliberately tiny data-lane
  mailboxes and arm the SWIM recovery stack;
* measure capacity with a closed-loop worker pool, then hold twice
  that pool in flight -- sustained overload, not a burst;
* tick the failure detector repeatedly *while* the cluster is
  saturated;
* assert the protection engaged (shed > 0), the overload stayed
  harmless to liveness (zero false crash verdicts, nobody confirmed
  dead), and goodput held a floor of half the measured capacity
  instead of collapsing.

A JSON artifact with the capacity/overload stats is written for CI
upload (``benchmarks/out/overload/overload_smoke.json`` by default --
a subdirectory, so ``bench_report.py`` ignores it).

Usage::

    python scripts/overload_smoke.py              # 8 nodes, 2x overload
    python scripts/overload_smoke.py --nodes 12 --count 4000
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import NetworkParams, OverlayParams  # noqa: E402
from repro.runtime import Cluster, ClusterConfig, run_load  # noqa: E402

DEFAULT_ARTIFACT = (
    REPO_ROOT / "benchmarks" / "out" / "overload" / "overload_smoke.json"
)

#: closed-loop pool that saturates the loopback cluster
CAPACITY_POOL = 16
#: goodput under 2x overload must hold this fraction of capacity
GOODPUT_FLOOR = 0.5


async def smoke(nodes: int, count: int, mailbox_cap: int, seed: int) -> dict:
    config = ClusterConfig(
        nodes=nodes,
        network=NetworkParams(topo_scale=0.25, seed=seed),
        overlay=OverlayParams(num_nodes=nodes, seed=seed),
        mailbox_cap=mailbox_cap,
        # fail fast on BUSY: the closed-loop worker reissues anyway
        busy_retries=0,
        breaker_threshold=8,
        breaker_reset_s=0.03,
    )
    async with Cluster(config) as cluster:
        recovery = await cluster.enable_recovery()
        print(
            f"booted {len(cluster)} nodes over {cluster.transport.kind}, "
            f"mailbox cap {mailbox_cap}, detector armed"
        )

        probe = await run_load(
            cluster, rate=0.0, count=count // 2, seed=seed,
            concurrency=CAPACITY_POOL,
        )
        capacity = probe.succeeded / probe.wall_duration_s
        print(
            f"capacity probe: {CAPACITY_POOL} in flight -> "
            f"{capacity:.0f} ops/s, p99 {probe.percentiles()['p99']:.3f} ms"
        )

        # 2x overload, with detector rounds fired *during* saturation
        load = asyncio.ensure_future(
            run_load(
                cluster, rate=0.0, count=count, seed=seed + 1,
                concurrency=2 * CAPACITY_POOL,
            )
        )
        ticks_during_load = 0
        while not load.done():
            await recovery.tick()
            ticks_during_load += 1
            await asyncio.sleep(0.02)
        report = await load
        goodput = report.succeeded / report.wall_duration_s
        pct = report.percentiles()
        counters = cluster.overload_counters()

    result = {
        "nodes": nodes,
        "mailbox_cap": mailbox_cap,
        "count": count,
        "seed": seed,
        "capacity_ops": capacity,
        "overload_concurrency": 2 * CAPACITY_POOL,
        "goodput_ops": goodput,
        "goodput_floor": GOODPUT_FLOOR,
        "p50_ms": pct["p50"],
        "p99_ms": pct["p99"],
        "errors": report.errors,
        "shed": report.shed,
        "busy_errors": report.busy_errors,
        "breaker_fastfails": report.breaker_fastfails,
        "breaker_opens": counters["breaker_opens"],
        "detector_ticks_during_load": ticks_during_load,
        "false_crashes": recovery.false_kills,
        "confirmed_dead": list(recovery.confirmed_dead),
    }
    print(
        f"overload: {report.ops} ops at 2x, goodput {goodput:.0f} ops/s "
        f"({goodput / capacity:.2f}x capacity), shed {report.shed}, "
        f"busy {report.busy_errors}, breaker opens {counters['breaker_opens']}, "
        f"p99 {pct['p99']:.3f} ms"
    )
    print(
        f"detector: {ticks_during_load} rounds during saturation, "
        f"{recovery.false_kills} false crashes, "
        f"{len(recovery.confirmed_dead)} confirmed dead"
    )
    return result


def verify(result: dict) -> list:
    failures = []
    if result["shed"] <= 0:
        failures.append("no sheds: the overload never engaged protection")
    if result["false_crashes"] != 0:
        failures.append(f"{result['false_crashes']} false crash verdicts")
    if result["confirmed_dead"]:
        failures.append(f"confirmed dead: {result['confirmed_dead']}")
    if result["detector_ticks_during_load"] < 1:
        failures.append("detector never ticked during saturation")
    floor = result["goodput_floor"] * result["capacity_ops"]
    if result["goodput_ops"] < floor:
        failures.append(
            f"goodput {result['goodput_ops']:.0f} ops/s under the "
            f"{floor:.0f} ops/s floor"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--count", type=int, default=3000)
    parser.add_argument("--mailbox-cap", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", type=pathlib.Path, default=DEFAULT_ARTIFACT,
        help="JSON artifact path (default benchmarks/out/overload/)",
    )
    args = parser.parse_args(argv)
    result = asyncio.run(
        smoke(args.nodes, args.count, args.mailbox_cap, args.seed)
    )
    failures = verify(result)
    result["ok"] = not failures
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"artifact: {args.out.relative_to(REPO_ROOT)}")
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print("overload smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
