"""Management-plane smoke: every endpoint, both harnesses, live crash.

The acceptance scenario for the management plane
(``src/repro/mgmt/``), run by ``make mgmt-smoke`` and CI:

* boot a single-process cluster with the SWIM recovery loop armed,
  attach a :class:`~repro.mgmt.controller.Controller`, and require all
  five endpoints to answer: ``/`` (the zone-map page), ``/topology``
  and ``/stats`` (schema-valid JSON), ``/metrics`` (strictly parseable
  Prometheus text exposition) and ``/health`` (200 healthy);
* crash one member and require ``/health`` to flip to 503 *degraded*
  within one probe period, then let the live recovery stack confirm
  the deaths and repair, and require ``/health`` back at 200 healthy;
* boot a 2-shard multi-process cluster and require the same endpoint
  contract, with ``enable_recovery`` refusing via the typed
  ``NotSupportedError`` and ``/health`` reporting
  ``recovery: unavailable (sharded)`` instead of a 500.

Writes a JSON report (for the CI artifact) when ``--json`` is given
and exits non-zero on any gate failure.

Usage::

    python scripts/mgmt_smoke.py                  # 32 nodes, then 16/2-shard
    python scripts/mgmt_smoke.py --nodes 16
    python scripts/mgmt_smoke.py --json out.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import NetworkParams, OverlayParams  # noqa: E402
from repro.mgmt import (  # noqa: E402
    Controller,
    ControllerConfig,
    http_get,
    parse_exposition,
)
from repro.runtime import (  # noqa: E402
    Cluster,
    ClusterConfig,
    NotSupportedError,
    ShardedCluster,
)

#: wall seconds the live recovery stack gets to repair the crash
REPAIR_DEADLINE_S = 20.0


def make_config(nodes: int, shards: int, seed: int) -> ClusterConfig:
    return ClusterConfig(
        nodes=nodes,
        network=NetworkParams(topo_scale=0.25, seed=seed),
        overlay=OverlayParams(num_nodes=nodes, seed=seed),
        transport="loopback",
        wire_encoding="packed",
        heartbeat_period=0.1,
        shards=shards,
    )


async def get_json(port: int, path: str):
    status, headers, body = await http_get("127.0.0.1", port, path)
    if not headers.get("content-type", "").startswith("application/json"):
        raise AssertionError(
            f"{path}: expected JSON, got {headers.get('content-type')!r}"
        )
    return status, json.loads(body)


def check_topology(topo: dict, nodes: int, shards: int, failures: list):
    if topo.get("schema_version") != 1:
        failures.append(f"topology schema_version {topo.get('schema_version')}")
    if len(topo.get("members", [])) != nodes:
        failures.append(f"topology lists {len(topo.get('members', []))} members")
    if topo.get("shards", {}).get("count") != shards:
        failures.append(f"topology shards {topo.get('shards')}")
    for member in topo.get("members", []):
        if not member.get("zones") or "lo" not in member["zones"][0]:
            failures.append(f"member {member.get('id')} has no zone box")
            break
    if not topo.get("expressways"):
        failures.append("topology exports no expressway links")


def check_stats(stats: dict, shards: int, failures: list):
    for section in (
        "events", "counters", "gauges", "phases",
        "transport_counters", "overload", "retries",
    ):
        if section not in stats:
            failures.append(f"stats missing section {section!r}")
    if stats.get("shards") != shards:
        failures.append(f"stats shards {stats.get('shards')} != {shards}")
    if shards > 1 and len(stats.get("per_shard", [])) != shards:
        failures.append("stats missing per-shard breakdown")


async def check_all_endpoints(
    controller: Controller, nodes: int, shards: int, failures: list
) -> dict:
    """GET every endpoint once; returns the parsed /health document."""
    status, headers, body = await http_get("127.0.0.1", controller.port, "/")
    if status != 200 or "<svg" not in body.decode("utf-8", "replace"):
        failures.append(f"zone-map page: status {status}")

    status, topo = await get_json(controller.port, "/topology")
    if status != 200:
        failures.append(f"/topology status {status}")
    check_topology(topo, nodes, shards, failures)

    status, stats = await get_json(controller.port, "/stats")
    if status != 200:
        failures.append(f"/stats status {status}")
    check_stats(stats, shards, failures)

    status, _, body = await http_get("127.0.0.1", controller.port, "/metrics")
    if status != 200:
        failures.append(f"/metrics status {status}")
    try:
        families = parse_exposition(body.decode("utf-8"))
    except ValueError as exc:
        failures.append(f"/metrics does not parse: {exc}")
    else:
        for family in ("repro_events_total", "repro_health_status"):
            if family not in families:
                failures.append(f"/metrics missing family {family}")

    status, health = await get_json(controller.port, "/health")
    if health.get("schema_version") != 1:
        failures.append(f"health schema_version {health.get('schema_version')}")
    health["_http_status"] = status
    return health


async def poll_health_until(port: int, want: str, deadline_s: float):
    """Poll /health until ``status == want``; returns (elapsed, doc)."""
    start = time.monotonic()
    while True:
        _, health = await get_json(port, "/health")
        elapsed = time.monotonic() - start
        if health.get("status") == want:
            return elapsed, health
        if elapsed > deadline_s:
            raise AssertionError(
                f"/health never reached {want!r} within {deadline_s}s "
                f"(stuck at {health.get('status')!r})"
            )
        await asyncio.sleep(0.01)


async def single_process_phase(nodes: int, seed: int) -> dict:
    """Cluster + recovery: endpoints, crash -> degraded -> healthy."""
    failures: list = []
    config = make_config(nodes, shards=1, seed=seed)
    async with Cluster(config) as cluster:
        recovery = await cluster.enable_recovery()
        async with Controller(cluster, ControllerConfig()) as controller:
            print(f"single-process: {nodes} nodes, API on {controller.url}")
            health = await check_all_endpoints(
                controller, nodes, 1, failures
            )
            if health["_http_status"] != 200 or health["status"] != "healthy":
                failures.append(
                    f"pre-crash health {health['status']} "
                    f"({health['_http_status']})"
                )
            if health["recovery"]["state"] != "active":
                failures.append(
                    f"recovery state {health['recovery']['state']!r}"
                )

            boot_host = int(cluster.bootstrap.host)
            victim = next(
                n for n, actor in sorted(cluster.actors.items())
                if int(actor.host) != boot_host
            )
            victims = (await cluster.crash(victim))["victims"]
            # one probe period is the detection budget; the health view
            # reads ground truth, so the very next scrape must see it
            probe_period = config.heartbeat_period
            flip_s, degraded = await poll_health_until(
                controller.port, "degraded", probe_period
            )
            down = [
                n["id"] for n in degraded["nodes"] if n["verdict"] != "alive"
            ]
            if not set(victims) <= set(down):
                failures.append(
                    f"degraded view misses victims {victims} (down: {down})"
                )
            print(
                f"crash of node {victim} ({len(victims)} victim(s)): "
                f"degraded after {flip_s * 1000:.0f} ms "
                f"(budget {probe_period * 1000:.0f} ms)"
            )

            repair_s, healed = await poll_health_until(
                controller.port, "healthy", REPAIR_DEADLINE_S
            )
            if healed["members"] != nodes - len(victims):
                failures.append(
                    f"post-repair membership {healed['members']} "
                    f"!= {nodes - len(victims)}"
                )
            print(
                f"recovery repaired in {repair_s:.1f} s: "
                f"{healed['members']} members, "
                f"{recovery.manager.takeovers} takeover(s), "
                f"{recovery.false_kills} false kill(s)"
            )
            if recovery.false_kills:
                failures.append(f"{recovery.false_kills} false kills")
            scrapes = controller.server.requests
    return {
        "nodes": nodes,
        "victims": len(victims),
        "degraded_after_s": flip_s,
        "probe_period_s": probe_period,
        "repaired_after_s": repair_s,
        "scrapes": scrapes,
        "failures": failures,
    }


async def sharded_phase(nodes: int, shards: int, seed: int) -> dict:
    """ShardedCluster: same endpoint contract, typed recovery refusal."""
    failures: list = []
    config = make_config(nodes, shards=shards, seed=seed)
    async with ShardedCluster(config) as cluster:
        try:
            await cluster.enable_recovery()
        except NotSupportedError:
            pass
        else:
            failures.append("sharded enable_recovery did not refuse")
        async with Controller(cluster, ControllerConfig()) as controller:
            print(
                f"sharded: {nodes} nodes / {shards} shards, "
                f"API on {controller.url}"
            )
            health = await check_all_endpoints(
                controller, nodes, shards, failures
            )
            if health["_http_status"] != 200 or health["status"] != "healthy":
                failures.append(
                    f"sharded health {health['status']} "
                    f"({health['_http_status']})"
                )
            if health["recovery"]["state"] != "unavailable (sharded)":
                failures.append(
                    f"sharded recovery state {health['recovery']['state']!r}"
                )
    return {"nodes": nodes, "shards": shards, "failures": failures}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=32)
    parser.add_argument("--shard-nodes", type=int, default=16)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--json", type=pathlib.Path, help="write the report as JSON here"
    )
    args = parser.parse_args(argv)

    single = asyncio.run(single_process_phase(args.nodes, args.seed))
    sharded = asyncio.run(
        sharded_phase(args.shard_nodes, args.shards, args.seed)
    )
    result = {"single_process": single, "sharded": sharded}
    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(result, indent=2) + "\n")
        print(f"report written to {args.json}")

    failures = single["failures"] + sharded["failures"]
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print("mgmt smoke OK (single-process + sharded)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
