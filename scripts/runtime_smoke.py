"""Runtime smoke: 64-node loopback cluster, lookups, sim parity.

The acceptance scenario for the live asyncio runtime
(``src/repro/runtime/``), run by ``make runtime-smoke`` and CI --
once per payload encoding (JSON and packed):

* boot a 64-node cluster over the loopback transport, every member
  after the seed joining topology-aware *over the wire* (JOIN frames
  through the binary codec);
* drive 1000 open-loop lookups through hop-by-hop ROUTE frames and
  require zero errors;
* replay a seeded lookup+route workload against an independently
  built synchronous simulator with the same (config, seed) and require
  bit-identical owners and route endpoints -- the live runtime must be
  a faithful execution of the model, not an approximation of it.

Running the identical scenario under both encodings pins the packed
struct fast path to the JSON semantics: a packed frame that decoded
to anything but the JSON payload would break parity immediately.

Exits non-zero on any error or parity mismatch.

Usage::

    python scripts/runtime_smoke.py                # 64 nodes, 1000 lookups
    python scripts/runtime_smoke.py --nodes 32 --lookups 200
    python scripts/runtime_smoke.py --encoding packed   # one encoding only
"""

from __future__ import annotations

import argparse
import asyncio
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import NetworkParams, OverlayParams  # noqa: E402
from repro.runtime import Cluster, ClusterConfig, run_load  # noqa: E402


async def smoke(
    nodes: int, lookups: int, rate: float, seed: int, encoding: str
) -> int:
    config = ClusterConfig(
        nodes=nodes,
        network=NetworkParams(topo_scale=0.25, seed=seed),
        overlay=OverlayParams(num_nodes=nodes, seed=seed),
        transport="loopback",
        wire_encoding=encoding,
    )
    async with Cluster(config) as cluster:
        print(
            f"booted {len(cluster)} nodes over {cluster.transport.kind} "
            f"({encoding} frames)"
        )
        print(
            f"overload protection: mailbox cap {config.mailbox_cap} "
            f"({config.shed_policy}-first shed), breaker threshold "
            f"{config.breaker_threshold}, adaptive timeout "
            f"{'on' if config.adaptive_timeout else 'off'}"
        )
        report = await run_load(cluster, rate=rate, count=lookups, seed=seed)
        pct = report.percentiles()
        print(
            f"load: {report.ops} lookups, {report.errors} errors, "
            f"p50 {pct['p50']:.3f} ms, p99 {pct['p99']:.3f} ms, "
            f"{report.achieved_rate:.0f} ops/s achieved "
            f"({report.loop} loop)"
        )
        verdict = await cluster.verify_against_sim(
            lookups=256, routes=64, seed=seed
        )
        print(
            f"parity vs synchronous simulator: "
            f"{verdict['mismatches']}/{verdict['checked']} mismatches"
        )
    failures = []
    if report.errors:
        failures.append(f"{report.errors} lookup errors")
    if report.ops != lookups:
        failures.append(f"drove {report.ops}/{lookups} lookups")
    if not verdict["ok"]:
        failures.append(f"{verdict['mismatches']} parity mismatches")
    if failures:
        print(f"FAIL ({encoding}): " + "; ".join(failures))
        return 1
    print(f"runtime smoke OK ({encoding})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=64)
    parser.add_argument("--lookups", type=int, default=1000)
    parser.add_argument("--rate", type=float, default=2000.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--encoding",
        choices=["json", "packed", "both"],
        default="both",
        help="payload encoding(s) to smoke (default both)",
    )
    parser.add_argument(
        "--uvloop",
        action="store_true",
        help="install the uvloop event-loop policy first (hard-fails "
        "if uvloop is not importable: the flag exists so CI can pin "
        "the leg to the loop it thinks it is testing)",
    )
    args = parser.parse_args(argv)
    if args.uvloop:
        import uvloop  # the CI leg must fail loudly, not fall back

        uvloop.install()
        print(f"event loop policy: uvloop {uvloop.__version__}")
    encodings = (
        ("json", "packed") if args.encoding == "both" else (args.encoding,)
    )
    status = 0
    for encoding in encodings:
        status |= asyncio.run(
            smoke(args.nodes, args.lookups, args.rate, args.seed, encoding)
        )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
