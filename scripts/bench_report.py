"""Merge per-bench JSON records into the repo-root perf trajectory.

Each bench run leaves one schema-versioned record per bench under
``benchmarks/out/*.json`` (written by ``benchmarks/_common.emit``).
This script folds them into two repo-root files that are checked in,
so the perf trajectory of the project travels with its history:

* ``BENCH_core.json`` -- the paper-figure benches;
* ``BENCH_ext.json``  -- the extension benches (``ext_*`` records).

Every record (and the merged files) is validated against
``benchmarks/schema.json`` -- a small built-in validator covering the
JSON-Schema subset the schema uses, so no extra dependency is needed.

Usage::

    python scripts/bench_report.py            # validate + merge
    python scripts/bench_report.py --check    # validate only (CI gate)

Two same-seed runs produce byte-identical records except for
wall-clock durations, which live only under keys prefixed ``wall``;
:func:`strip_wall` removes them for such comparisons.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OUT_DIR = REPO_ROOT / "benchmarks" / "out"
SCHEMA_PATH = REPO_ROOT / "benchmarks" / "schema.json"

SCHEMA_VERSION = 1

TARGETS = {
    "core": REPO_ROOT / "BENCH_core.json",
    "ext": REPO_ROOT / "BENCH_ext.json",
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def validate(instance, schema: dict, root: dict = None, path: str = "$") -> list:
    """Errors of ``instance`` against the JSON-Schema subset we use.

    Supports: ``type``, ``enum``, ``required``, ``properties``,
    ``additionalProperties`` (schema form), ``items`` and local
    ``$ref`` (``#/definitions/...``).  Returns a list of error
    strings; empty means valid.
    """
    root = root if root is not None else schema
    ref = schema.get("$ref")
    if ref is not None:
        target = root
        for part in ref.lstrip("#/").split("/"):
            target = target[part]
        return validate(instance, target, root, path)

    errors = []
    expected = schema.get("type")
    if expected is not None:
        names = expected if isinstance(expected, list) else [expected]
        ok = any(
            isinstance(instance, _TYPES[name])
            and not (name in ("integer", "number") and isinstance(instance, bool))
            for name in names
        )
        if not ok:
            return [f"{path}: expected {expected}, got {type(instance).__name__}"]
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in {schema['enum']!r}")
    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, value in instance.items():
            if key in properties:
                errors.extend(
                    validate(value, properties[key], root, f"{path}.{key}")
                )
            elif isinstance(extra, dict):
                errors.extend(validate(value, extra, root, f"{path}.{key}"))
    if isinstance(instance, list) and "items" in schema:
        for i, value in enumerate(instance):
            errors.extend(validate(value, schema["items"], root, f"{path}[{i}]"))
    return errors


def strip_wall(value):
    """Clone with every key starting with ``wall`` removed, recursively.

    Applying this to two same-seed records must yield byte-identical
    canonical JSON -- the determinism contract of the bench layer.
    """
    if isinstance(value, dict):
        return {
            k: strip_wall(v)
            for k, v in value.items()
            if not str(k).startswith("wall")
        }
    if isinstance(value, list):
        return [strip_wall(v) for v in value]
    return value


def load_schema() -> dict:
    return json.loads(SCHEMA_PATH.read_text())


def load_records(out_dir: pathlib.Path = OUT_DIR) -> dict:
    """``name -> record`` for every ``*.json`` under ``out_dir``."""
    records = {}
    for record_path in sorted(out_dir.glob("*.json")):
        record = json.loads(record_path.read_text())
        records[record["name"]] = record
    return records


def bucket_of(name: str) -> str:
    return "ext" if name.startswith("ext_") else "core"


def canonical_json(value) -> str:
    return json.dumps(value, sort_keys=True, indent=2, allow_nan=False) + "\n"


def merge(records: dict, targets: dict = None) -> dict:
    """Fold records into the trajectory files; returns written paths."""
    targets = targets or TARGETS
    written = {}
    for bucket, target in targets.items():
        fresh = {
            name: record
            for name, record in records.items()
            if bucket_of(name) == bucket
        }
        if not fresh:
            continue
        if target.exists():
            merged = json.loads(target.read_text())
        else:
            merged = {"schema_version": SCHEMA_VERSION, "benches": {}}
        merged["benches"].update(fresh)
        target.write_text(canonical_json(merged))
        written[bucket] = target
    return written


def check(records: dict, targets: dict = None) -> list:
    """Validate records and any existing trajectory files."""
    schema = load_schema()
    record_schema = {"$ref": "#/definitions/record"}
    errors = []
    for name, record in sorted(records.items()):
        errors.extend(validate(record, record_schema, root=schema, path=name))
    for target in (targets or TARGETS).values():
        if target.exists():
            errors.extend(
                validate(
                    json.loads(target.read_text()),
                    schema,
                    path=target.name,
                )
            )
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate records and trajectory files without merging",
    )
    parser.add_argument(
        "--out-dir",
        type=pathlib.Path,
        default=OUT_DIR,
        help="directory holding the per-bench *.json records",
    )
    args = parser.parse_args(argv)

    records = load_records(args.out_dir)
    if not records:
        print(f"no bench records under {args.out_dir}", file=sys.stderr)
        return 1
    errors = check(records)
    if errors:
        for error in errors:
            print(f"schema violation: {error}", file=sys.stderr)
        return 1
    print(f"{len(records)} records valid against {SCHEMA_PATH.name}")
    if not args.check:
        for bucket, target in sorted(merge(records).items()):
            merged = json.loads(target.read_text())
            print(f"{target.name}: {len(merged['benches'])} benches ({bucket})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
