"""Shard smoke: 64 nodes across 4 worker processes, parity + throughput.

The acceptance scenario for the sharded multi-process runtime
(``src/repro/runtime/shard.py``), run by ``make shard-smoke`` and CI:

* boot a 64-node overlay partitioned across 4 shard workers (one
  event loop per process), cross-shard frames riding the TCP peering
  sockets;
* hold the sharded cluster to the *identical* sim-parity bar as the
  single-process runtime: a seeded lookup+route workload must produce
  bit-identical owners and endpoints against an independently built
  synchronous simulator;
* drive a closed-loop packed load and require zero errors plus a
  sanity throughput floor (generous: this is a smoke, not a bench --
  the calibrated numbers live in ``benchmarks/bench_perf_runtime.py``);
* check that cross-shard traffic actually flowed (a sharding bug that
  silently kept every hop local would otherwise pass).

Writes a JSON report (for the CI artifact) when ``--json`` is given
and exits non-zero on any error, parity mismatch, or gate failure.

Usage::

    python scripts/shard_smoke.py                     # 64 nodes, 4 shards
    python scripts/shard_smoke.py --shards 2 --nodes 32
    python scripts/shard_smoke.py --json out.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import NetworkParams, OverlayParams  # noqa: E402
from repro.runtime import ClusterConfig, ShardedCluster  # noqa: E402

#: ops/s floor for the closed-loop sanity gate -- far below what even
#: a single busy core sustains, so only a real stall trips it
MIN_THROUGHPUT = 500.0


async def smoke(nodes: int, shards: int, lookups: int, seed: int) -> dict:
    config = ClusterConfig(
        nodes=nodes,
        network=NetworkParams(topo_scale=0.25, seed=seed),
        overlay=OverlayParams(num_nodes=nodes, seed=seed),
        transport="loopback",
        wire_encoding="packed",
        shards=shards,
    )
    async with ShardedCluster(config) as cluster:
        boot = cluster.boot_report()
        print(
            f"booted {len(cluster)} nodes across {shards} shards "
            f"(owned: {boot['owned_per_shard']})"
        )
        verdict = await cluster.verify_against_sim(
            lookups=256, routes=64, seed=seed
        )
        print(
            f"parity vs synchronous simulator: "
            f"{verdict['mismatches']}/{verdict['checked']} mismatches"
        )
        report = await cluster.run_load(
            rate=0.0, count=lookups, seed=seed, concurrency=4 * shards
        )
        pct = report.percentiles()
        print(
            f"load: {report.ops} lookups, {report.errors} errors, "
            f"p50 {pct['p50']:.3f} ms, p99 {pct['p99']:.3f} ms, "
            f"{report.achieved_rate:.0f} ops/s ({report.loop} loops)"
        )
        counters = await cluster.counters()
    transport = counters["transport"]
    print(
        f"frames: {transport['local_delivered']} intra-shard, "
        f"{transport['peer_delivered']} cross-shard"
    )
    return {
        "nodes": nodes,
        "shards": shards,
        "owned_per_shard": boot["owned_per_shard"],
        "wall_boot_s_per_shard": boot["wall_boot_s_per_shard"],
        "parity": verdict,
        "ops": report.ops,
        "errors": report.errors,
        "loop": report.loop,
        "wall_throughput_ops": report.achieved_rate,
        "wall_p50_ms": pct["p50"],
        "wall_p99_ms": pct["p99"],
        "frames_intra_shard": transport["local_delivered"],
        "frames_cross_shard": transport["peer_delivered"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=64)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--lookups", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json", type=pathlib.Path, help="write the report as JSON here"
    )
    args = parser.parse_args(argv)
    result = asyncio.run(
        smoke(args.nodes, args.shards, args.lookups, args.seed)
    )
    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(result, indent=2) + "\n")
        print(f"report written to {args.json}")
    failures = []
    if result["errors"]:
        failures.append(f"{result['errors']} lookup errors")
    if not result["parity"]["ok"]:
        failures.append(
            f"{result['parity']['mismatches']} parity mismatches"
        )
    if result["wall_throughput_ops"] < MIN_THROUGHPUT:
        failures.append(
            f"throughput {result['wall_throughput_ops']:.0f} ops/s "
            f"below the {MIN_THROUGHPUT:.0f} sanity floor"
        )
    if result["frames_cross_shard"] == 0:
        failures.append("no cross-shard frames flowed")
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print(f"shard smoke OK ({args.shards} shards)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
