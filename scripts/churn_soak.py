"""Churn soak: both execution modes must self-stabilize under attack.

The self-stabilization gate for the recovery stack, run by
``make soak-smoke`` and CI:

* **sim**: a simulated overlay under continuous join/leave/crash
  (+ partition) churn, with adversarial corruption injected each
  epoch -- scrambled expressway tables, stale map replicas, a
  poisoned owner index -- must converge back to a
  ``check_invariants``-clean state within a bounded number of repair
  rounds, every epoch;
* **live**: a loopback cluster running the wire-level SWIM loop must
  sustain open-loop lookups through a kill-33%-of-nodes event with
  measured availability, shield verdicts through a partition window
  without false kills, and converge from the same three corruption
  classes within the round budget.

Writes the full record to ``benchmarks/out/soak/churn_soak.json``
(uploaded as a CI artifact) and exits non-zero if any epoch missed
its round budget, the live cluster served nothing through the kill,
or any false kill/purge occurred.

Usage::

    python scripts/churn_soak.py --smoke          # CI-sized, time-boxed
    python scripts/churn_soak.py                  # default sizes
    python scripts/churn_soak.py --mode sim --sim-nodes 1024
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.soak import SoakConfig, run_live_soak, run_sim_soak  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "benchmarks" / "out" / "soak" / "churn_soak.json"


def _failures(record: dict) -> list:
    mode = record["mode"]
    out = []
    for epoch in record["epochs"]:
        rounds = epoch.get("rounds_to_converge", epoch.get("wall_rounds_to_converge"))
        if rounds is None:
            out.append(
                f"{mode}/{epoch['kind']}: no convergence within budget "
                f"({epoch['violation']})"
            )
    if record["false_kills"]:
        out.append(f"{mode}: {record['false_kills']} false kill(s)")
    if record["false_purges"]:
        out.append(f"{mode}: {record['false_purges']} false purge(s)")
    if mode == "live" and not record["wall_availability"] > 0.0:
        out.append("live: served nothing through the kill-33% event")
    return out


def _report(record: dict) -> None:
    mode = record["mode"]
    for epoch in record["epochs"]:
        rounds = epoch.get("rounds_to_converge", epoch.get("wall_rounds_to_converge"))
        extra = (
            f", availability {epoch['availability']:.2f}"
            if "availability" in epoch
            else ""
        )
        print(
            f"  {mode:4s} {epoch['kind']:18s} corrupted {epoch['corrupted']:4d}"
            f" -> converged in {rounds} round(s){extra}"
        )
    if mode == "live":
        print(
            f"  live availability through kill-{record['killed']}-nodes: "
            f"{record['wall_availability']:.2f} "
            f"({record['load_errors']}/{record['load_ops']} errors, "
            f"p99 {record['wall_p99_ms']:.1f} ms, "
            f"{record['retries']} retries)"
        )
    print(
        f"  {mode}: false_kills={record['false_kills']} "
        f"false_purges={record['false_purges']} "
        f"takeovers={record['takeovers']} "
        f"scrub_repairs={record['scrub_repairs']} "
        f"shielded={record['shielded_verdicts']}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=("sim", "live", "both"), default="both")
    parser.add_argument("--sim-nodes", type=int, default=256)
    parser.add_argument("--live-nodes", type=int, default=96)
    parser.add_argument("--epochs", type=int, default=3)
    parser.add_argument("--budget", type=int, default=30)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: fewer nodes, same gates, bounded wall time",
    )
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    if args.smoke:
        args.sim_nodes = min(args.sim_nodes, 128)
        args.live_nodes = min(args.live_nodes, 48)
        args.budget = min(args.budget, 25)

    records = []
    if args.mode in ("sim", "both"):
        config = SoakConfig(
            nodes=args.sim_nodes,
            epochs=args.epochs,
            round_budget=args.budget,
            seed=args.seed,
        )
        print(f"sim soak: {args.sim_nodes} nodes, {args.epochs} epochs")
        records.append(run_sim_soak(config))
        _report(records[-1])
    if args.mode in ("live", "both"):
        config = SoakConfig(
            nodes=args.live_nodes,
            epochs=args.epochs,
            round_budget=args.budget,
            lookups=max(120, args.live_nodes * 2),
            seed=args.seed,
        )
        print(f"live soak: {args.live_nodes} nodes over loopback")
        records.append(asyncio.run(run_live_soak(config)))
        _report(records[-1])

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(records, indent=1, sort_keys=True) + "\n")
    print(f"wrote {args.out}")

    failures = [f for record in records for f in _failures(record)]
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print("churn soak OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
