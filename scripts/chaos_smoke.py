"""Chaos smoke: crash + partition + probe loss, then prove convergence.

The acceptance scenario for the self-healing recovery stack
(``src/repro/core/recovery.py``), run by ``make chaos-smoke`` and CI:

* build an overlay, arm probe loss, one scheduled transit-domain
  partition window, and map replication;
* crash-stop 20% of the members *simultaneously* -- no graceful
  departure, no instant takeover: orphaned zones, vanished map copies,
  stale soft-state;
* let the failure detector, crash takeover, re-replication and
  partition-heal reconciliation run on the simulated clock, then a
  bounded number of maintenance sweeps;
* assert the stack-wide :func:`repro.core.recovery.check_invariants`
  holds and -- probe loss being the only fault against live nodes --
  that the detector's false-kill count is exactly 0, on every seed.

A JSON artifact with the recovery telemetry of each seed is written
for CI upload (``benchmarks/out/chaos/recovery_telemetry.json`` by
default -- a subdirectory, so ``bench_report.py`` ignores it).

Usage::

    python scripts/chaos_smoke.py                 # 3 seeds, 64 nodes
    python scripts/chaos_smoke.py --seeds 0 7 42 --nodes 96
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core import (  # noqa: E402
    DetectorParams,
    NetworkParams,
    OverlayParams,
    TopologyAwareOverlay,
    check_invariants,
    make_network,
)
from repro.core.recovery import RECOVERY_CATEGORIES  # noqa: E402
from repro.netsim.faults import FaultPlan, Partition  # noqa: E402

DEFAULT_ARTIFACT = REPO_ROOT / "benchmarks" / "out" / "chaos" / "recovery_telemetry.json"


def run_scenario(
    seed: int,
    nodes: int = 64,
    crash_fraction: float = 0.2,
    probe_loss: float = 0.15,
    settle_ms: float = 20000.0,
    max_sweeps: int = 5,
) -> dict:
    """One chaos run; returns its telemetry summary (raises on failure)."""
    network = make_network(
        NetworkParams(topology="tsk-large", topo_scale=0.25, seed=seed)
    )
    overlay = TopologyAwareOverlay(
        network,
        OverlayParams(
            num_nodes=nodes,
            landmarks=8,
            policy="softstate",
            replication_factor=2,
            seed=seed + 3,
        ),
    )
    overlay.build()
    now = network.clock.now
    plan = FaultPlan(
        probe_loss_rate=probe_loss,
        partitions=(Partition(now + 4000.0, now + 9000.0, (0,)),),
    )
    overlay.arm_faults(plan, seed=seed + 11)
    overlay.enable_recovery(DetectorParams(period=500.0))

    rng = np.random.default_rng(seed + 5)
    victims = sorted(
        int(v)
        for v in rng.choice(
            overlay.node_ids, size=int(crash_fraction * nodes), replace=False
        )
    )
    lost = salvageable = 0
    for victim in victims:
        outcome = overlay.crash_node(victim)
        lost += outcome["lost"]
        salvageable += outcome["salvageable"]

    network.clock.run_until(now + settle_ms)
    detector, recovery = overlay.detector, overlay.recovery
    sweeps = 0
    while sweeps < max_sweeps:
        sweeps += 1
        network.clock.advance(overlay.maintenance.poll_interval)
        overlay.maintenance.poll_once()
        try:
            summary = check_invariants(overlay, detector)
            break
        except AssertionError:
            if sweeps == max_sweeps:
                raise

    assert sorted(detector.confirmed_dead) == victims, (
        f"seed {seed}: confirmed {sorted(detector.confirmed_dead)} != "
        f"crashed {victims}"
    )
    assert detector.false_kills == 0, (
        f"seed {seed}: {detector.false_kills} live node(s) falsely killed"
    )

    return {
        "seed": seed,
        "nodes": nodes,
        "crashed": len(victims),
        "records_lost": lost,
        "records_salvageable": salvageable,
        "detector": {
            "rounds": detector.rounds,
            "confirmed": len(detector.confirmed_dead),
            "false_kills": detector.false_kills,
            "refutations": detector.refutations,
            "shielded_verdicts": detector.shielded_verdicts,
        },
        "recovery": {
            "takeovers": recovery.takeovers,
            "invalidated": recovery.invalidated,
            "rehosted": recovery.rehosted,
            "republished": recovery.republished
            + overlay.maintenance.republished,
            "reconciliations": recovery.reconciliations,
        },
        "traffic": {
            category: network.stats.get(category)
            for category in RECOVERY_CATEGORIES
        },
        "sweeps_to_converge": sweeps,
        "invariants": summary,
    }


def run_loss_only(
    seed: int,
    nodes: int = 64,
    probe_loss: float = 0.2,
    settle_ms: float = 20000.0,
) -> dict:
    """Probe loss only, nobody dies: the detector must kill no one."""
    network = make_network(
        NetworkParams(topology="tsk-large", topo_scale=0.25, seed=seed)
    )
    overlay = TopologyAwareOverlay(
        network,
        OverlayParams(
            num_nodes=nodes, landmarks=8, policy="softstate", seed=seed + 3
        ),
    )
    overlay.build()
    overlay.arm_faults(FaultPlan(probe_loss_rate=probe_loss), seed=seed + 11)
    overlay.enable_recovery(DetectorParams(period=500.0))
    network.clock.run_until(network.clock.now + settle_ms)
    detector = overlay.detector
    assert detector.confirmed_dead == [], (
        f"seed {seed}: probe loss alone killed {detector.confirmed_dead}"
    )
    assert detector.false_kills == 0
    check_invariants(overlay, detector)
    return {
        "seed": seed,
        "rounds": detector.rounds,
        "suspicions_refuted": detector.refutations,
        "false_kills": 0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    parser.add_argument("--nodes", type=int, default=64)
    parser.add_argument(
        "--artifact", type=pathlib.Path, default=DEFAULT_ARTIFACT
    )
    args = parser.parse_args(argv)

    results, loss_only = [], []
    for seed in args.seeds:
        result = run_scenario(seed, nodes=args.nodes)
        results.append(result)
        print(
            f"seed {seed}: {result['crashed']} crashed, "
            f"{result['detector']['confirmed']} confirmed in "
            f"{result['detector']['rounds']} rounds, "
            f"0 false kills, invariants OK after "
            f"{result['sweeps_to_converge']} sweep(s)"
        )
    for seed in args.seeds:
        outcome = run_loss_only(seed, nodes=args.nodes)
        loss_only.append(outcome)
        print(
            f"seed {seed} (loss only): {outcome['rounds']} rounds, "
            f"{outcome['suspicions_refuted']} suspicions refuted, 0 kills"
        )

    args.artifact.parent.mkdir(parents=True, exist_ok=True)
    args.artifact.write_text(
        json.dumps(
            {
                "scenario": "chaos_smoke",
                "runs": results,
                "loss_only": loss_only,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"telemetry artifact: {args.artifact}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
